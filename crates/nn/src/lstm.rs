//! LSTM cell forward/backward (BPTT building block).
//!
//! Weight layout follows the paper's §III-A RNN formulation generalised to
//! LSTM gates: per layer there is an input matrix `W_x ∈ R^{4H×in}` (with
//! bundled bias) and a **recurrent** matrix `W_h ∈ R^{4H×H}` — the
//! recurrent connections FedBIAD can drop but FedDrop/AFD cannot. Gate
//! order inside the 4H dimension is `\[i, f, g, o\]` (input, forget, cell
//! candidate, output).
//!
//! Dropped rows simply hold zero weights, so the corresponding gate
//! pre-activation contribution vanishes — exactly the spike-and-slab
//! semantics of eq. (4) (weights are zeroed, not activations).

use crate::activation::sigmoid;
use fedbiad_tensor::{ops, Matrix};

/// Per-timestep forward cache required by the backward pass.
#[derive(Clone, Debug, Default)]
pub struct StepCache {
    /// Input vector for the step.
    pub x: Vec<f32>,
    /// Previous hidden state.
    pub h_prev: Vec<f32>,
    /// Previous cell state.
    pub c_prev: Vec<f32>,
    /// Post-activation gates `\[i, f, g, o\]`, length 4H.
    pub gates: Vec<f32>,
    /// New cell state.
    pub c: Vec<f32>,
    /// tanh(c), cached for the backward pass.
    pub tanh_c: Vec<f32>,
    /// New hidden state.
    pub h: Vec<f32>,
}

/// One LSTM cell step. `wx: 4H×in`, `bias: 4H`, `wh: 4H×H`.
/// Fills `cache` (reusing its buffers) and leaves the new `h`/`c` there.
pub fn cell_forward(
    wx: &Matrix,
    bias: &[f32],
    wh: &Matrix,
    x: &[f32],
    h_prev: &[f32],
    c_prev: &[f32],
    cache: &mut StepCache,
) {
    let h4 = wx.rows();
    debug_assert_eq!(h4 % 4, 0, "gate matrix rows must be 4H");
    let h = h4 / 4;
    debug_assert_eq!(wh.rows(), h4);
    debug_assert_eq!(wh.cols(), h);
    debug_assert_eq!(h_prev.len(), h);
    debug_assert_eq!(c_prev.len(), h);

    cache.x.clear();
    cache.x.extend_from_slice(x);
    cache.h_prev.clear();
    cache.h_prev.extend_from_slice(h_prev);
    cache.c_prev.clear();
    cache.c_prev.extend_from_slice(c_prev);

    // z = Wx·x + b + Wh·h_prev
    cache.gates.resize(h4, 0.0);
    ops::gemv(wx, x, bias, &mut cache.gates);
    let mut rec = vec![0.0f32; h4];
    ops::gemv(wh, h_prev, &[], &mut rec);
    ops::axpy(1.0, &rec, &mut cache.gates);

    // Gate nonlinearities: σ on i/f/o, tanh on g.
    let (ifg, o) = cache.gates.split_at_mut(3 * h);
    let (i_f, g) = ifg.split_at_mut(2 * h);
    for v in i_f.iter_mut() {
        *v = sigmoid(*v);
    }
    for v in g.iter_mut() {
        *v = v.tanh();
    }
    for v in o.iter_mut() {
        *v = sigmoid(*v);
    }

    cache.c.resize(h, 0.0);
    cache.tanh_c.resize(h, 0.0);
    cache.h.resize(h, 0.0);
    // Hard length check: iterating a short `c_prev` would silently truncate
    // the state update and leave stale tail values in the resized caches.
    assert_eq!(c_prev.len(), h, "cell_forward: c_prev length");
    for (k, &cp) in c_prev.iter().enumerate() {
        let i = cache.gates[k];
        let f = cache.gates[h + k];
        let g = cache.gates[2 * h + k];
        let o = cache.gates[3 * h + k];
        let c = f * cp + i * g;
        cache.c[k] = c;
        let tc = c.tanh();
        cache.tanh_c[k] = tc;
        cache.h[k] = o * tc;
    }
}

/// Backward through one cell step.
///
/// * `dh` — ∂L/∂h for this step (upstream + future-step contribution).
/// * `dc_next` — ∂L/∂c flowing back from the next step (zeros for the last).
/// * Accumulates into `dwx`, `dbias`, `dwh`; writes `dx`, `dh_prev`,
///   `dc_prev` (overwritten, not accumulated).
#[allow(clippy::too_many_arguments)]
pub fn cell_backward(
    wx: &Matrix,
    wh: &Matrix,
    cache: &StepCache,
    dh: &[f32],
    dc_next: &[f32],
    dwx: &mut Matrix,
    dbias: &mut [f32],
    dwh: &mut Matrix,
    dx: &mut [f32],
    dh_prev: &mut [f32],
    dc_prev: &mut [f32],
) {
    let h = cache.h.len();
    let h4 = 4 * h;
    let mut dz = vec![0.0f32; h4];
    for k in 0..h {
        let i = cache.gates[k];
        let f = cache.gates[h + k];
        let g = cache.gates[2 * h + k];
        let o = cache.gates[3 * h + k];
        let tc = cache.tanh_c[k];

        let do_ = dh[k] * tc;
        let dc = dc_next[k] + dh[k] * o * (1.0 - tc * tc);

        let di = dc * g;
        let df = dc * cache.c_prev[k];
        let dg = dc * i;
        dc_prev[k] = dc * f;

        dz[k] = di * i * (1.0 - i);
        dz[h + k] = df * f * (1.0 - f);
        dz[2 * h + k] = dg * (1.0 - g * g);
        dz[3 * h + k] = do_ * o * (1.0 - o);
    }

    ops::ger(dwx, 1.0, &dz, &cache.x);
    if !dbias.is_empty() {
        ops::axpy(1.0, &dz, dbias);
    }
    ops::ger(dwh, 1.0, &dz, &cache.h_prev);
    ops::gemv_t(wx, &dz, dx);
    ops::gemv_t(wh, &dz, dh_prev);
}

/// Batched gate fusion: nonlinearities + state update for `nb` stacked
/// windows at one timestep.
///
/// `gates` holds `nb` rows of 4H pre-activations `[i, f, g, o]` (already
/// `Wx·x + b + Wh·h_prev`); `c_prev` holds `nb` rows of H. Writes the new
/// cell state, its tanh and the hidden state row-aligned. Every element
/// runs the exact computation of [`cell_forward`], so a row is
/// bit-identical to the per-window step.
pub fn cell_forward_block(
    gates: &mut [f32],
    c_prev: &[f32],
    c: &mut [f32],
    tanh_c: &mut [f32],
    h_out: &mut [f32],
    nb: usize,
    hd: usize,
) {
    debug_assert_eq!(gates.len(), nb * 4 * hd);
    debug_assert_eq!(c_prev.len(), nb * hd);
    debug_assert_eq!(c.len(), nb * hd);
    debug_assert_eq!(tanh_c.len(), nb * hd);
    debug_assert_eq!(h_out.len(), nb * hd);
    for w in 0..nb {
        let grow = &mut gates[w * 4 * hd..(w + 1) * 4 * hd];
        let (ifg, o) = grow.split_at_mut(3 * hd);
        let (i_f, g) = ifg.split_at_mut(2 * hd);
        for v in i_f.iter_mut() {
            *v = sigmoid(*v);
        }
        for v in g.iter_mut() {
            *v = v.tanh();
        }
        for v in o.iter_mut() {
            *v = sigmoid(*v);
        }
        let grow = &gates[w * 4 * hd..(w + 1) * 4 * hd];
        let cp = &c_prev[w * hd..(w + 1) * hd];
        let cw = &mut c[w * hd..(w + 1) * hd];
        let tw = &mut tanh_c[w * hd..(w + 1) * hd];
        let hw = &mut h_out[w * hd..(w + 1) * hd];
        for (k, &cpk) in cp.iter().enumerate() {
            let i = grow[k];
            let f = grow[hd + k];
            let g = grow[2 * hd + k];
            let o = grow[3 * hd + k];
            let cv = f * cpk + i * g;
            cw[k] = cv;
            let tc = cv.tanh();
            tw[k] = tc;
            hw[k] = o * tc;
        }
    }
}

/// Batched adjoint of [`cell_forward_block`]: computes the gate
/// pre-activation deltas `dz` (`nb×4H`) and overwrites `dc_prev`
/// (`nb×hd`) from the cached post-activation gates, `tanh(c)`, `c_prev`,
/// the incoming `dh` and the next step's `dc`. Element math is exactly
/// [`cell_backward`]'s dz computation; the matrix products
/// (`dwx`/`dwh`/`dx`/`dh_prev`) are the caller's GEMMs.
#[allow(clippy::too_many_arguments)]
pub fn cell_backward_block(
    gates: &[f32],
    tanh_c: &[f32],
    c_prev: &[f32],
    dh: &[f32],
    dc_next: &[f32],
    dz: &mut [f32],
    dc_prev: &mut [f32],
    nb: usize,
    hd: usize,
) {
    debug_assert_eq!(gates.len(), nb * 4 * hd);
    debug_assert_eq!(dz.len(), nb * 4 * hd);
    debug_assert_eq!(dh.len(), nb * hd);
    debug_assert_eq!(dc_next.len(), nb * hd);
    debug_assert_eq!(dc_prev.len(), nb * hd);
    for w in 0..nb {
        let grow = &gates[w * 4 * hd..(w + 1) * 4 * hd];
        let dzrow = &mut dz[w * 4 * hd..(w + 1) * 4 * hd];
        for k in 0..hd {
            let i = grow[k];
            let f = grow[hd + k];
            let g = grow[2 * hd + k];
            let o = grow[3 * hd + k];
            let tc = tanh_c[w * hd + k];

            let do_ = dh[w * hd + k] * tc;
            let dc = dc_next[w * hd + k] + dh[w * hd + k] * o * (1.0 - tc * tc);

            let di = dc * g;
            let df = dc * c_prev[w * hd + k];
            let dg = dc * i;
            dc_prev[w * hd + k] = dc * f;

            dzrow[k] = di * i * (1.0 - i);
            dzrow[hd + k] = df * f * (1.0 - f);
            dzrow[2 * hd + k] = dg * (1.0 - g * g);
            dzrow[3 * hd + k] = do_ * o * (1.0 - o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_tensor::rng::{stream, StreamTag};
    use fedbiad_tensor::{init, Matrix};

    /// Scalar loss used by the gradient checks: L = ½‖h‖² after one step.
    fn loss_one_step(
        wx: &Matrix,
        bias: &[f32],
        wh: &Matrix,
        x: &[f32],
        h0: &[f32],
        c0: &[f32],
    ) -> f32 {
        let mut cache = StepCache::default();
        cell_forward(wx, bias, wh, x, h0, c0, &mut cache);
        0.5 * cache.h.iter().map(|v| v * v).sum::<f32>()
    }

    #[test]
    fn lstm_cell_gradcheck() {
        let (inp, h) = (3usize, 2usize);
        let mut rng = stream(5, StreamTag::Init, 0, 0);
        let mut wx = Matrix::zeros(4 * h, inp);
        let mut wh = Matrix::zeros(4 * h, h);
        init::uniform(&mut wx, 0.5, &mut rng);
        init::uniform(&mut wh, 0.5, &mut rng);
        let bias: Vec<f32> = (0..4 * h).map(|i| 0.01 * i as f32).collect();
        let x = vec![0.3, -0.6, 0.2];
        let h0 = vec![0.1, -0.2];
        let c0 = vec![0.05, 0.3];

        let mut cache = StepCache::default();
        cell_forward(&wx, &bias, &wh, &x, &h0, &c0, &mut cache);
        let dh: Vec<f32> = cache.h.clone(); // dL/dh = h
        let dc0v = vec![0.0; h];
        let mut dwx = Matrix::zeros(4 * h, inp);
        let mut dbias = vec![0.0; 4 * h];
        let mut dwh = Matrix::zeros(4 * h, h);
        let mut dx = vec![0.0; inp];
        let mut dh_prev = vec![0.0; h];
        let mut dc_prev = vec![0.0; h];
        cell_backward(
            &wx,
            &wh,
            &cache,
            &dh,
            &dc0v,
            &mut dwx,
            &mut dbias,
            &mut dwh,
            &mut dx,
            &mut dh_prev,
            &mut dc_prev,
        );

        let eps = 1e-3;
        // Check a representative subset of each gradient tensor.
        for (r, c) in [(0, 0), (3, 2), (5, 1), (7, 0)] {
            let mut p = wx.clone();
            p.set(r, c, p.get(r, c) + eps);
            let mut m = wx.clone();
            m.set(r, c, m.get(r, c) - eps);
            let fd = (loss_one_step(&p, &bias, &wh, &x, &h0, &c0)
                - loss_one_step(&m, &bias, &wh, &x, &h0, &c0))
                / (2.0 * eps);
            assert!(
                (dwx.get(r, c) - fd).abs() < 2e-3,
                "dwx[{r},{c}]: {} vs {fd}",
                dwx.get(r, c)
            );
        }
        for (r, c) in [(0, 0), (4, 1), (6, 0)] {
            let mut p = wh.clone();
            p.set(r, c, p.get(r, c) + eps);
            let mut m = wh.clone();
            m.set(r, c, m.get(r, c) - eps);
            let fd = (loss_one_step(&wx, &bias, &p, &x, &h0, &c0)
                - loss_one_step(&wx, &bias, &m, &x, &h0, &c0))
                / (2.0 * eps);
            assert!((dwh.get(r, c) - fd).abs() < 2e-3, "dwh[{r},{c}]");
        }
        for r in [0usize, 2, 5, 7] {
            let mut p = bias.clone();
            p[r] += eps;
            let mut m = bias.clone();
            m[r] -= eps;
            let fd = (loss_one_step(&wx, &p, &wh, &x, &h0, &c0)
                - loss_one_step(&wx, &m, &wh, &x, &h0, &c0))
                / (2.0 * eps);
            assert!((dbias[r] - fd).abs() < 2e-3, "dbias[{r}]");
        }
        for i in 0..inp {
            let mut p = x.clone();
            p[i] += eps;
            let mut m = x.clone();
            m[i] -= eps;
            let fd = (loss_one_step(&wx, &bias, &wh, &p, &h0, &c0)
                - loss_one_step(&wx, &bias, &wh, &m, &h0, &c0))
                / (2.0 * eps);
            assert!((dx[i] - fd).abs() < 2e-3, "dx[{i}]");
        }
        for i in 0..h {
            let mut p = h0.clone();
            p[i] += eps;
            let mut m = h0.clone();
            m[i] -= eps;
            let fd = (loss_one_step(&wx, &bias, &wh, &x, &p, &c0)
                - loss_one_step(&wx, &bias, &wh, &x, &m, &c0))
                / (2.0 * eps);
            assert!((dh_prev[i] - fd).abs() < 2e-3, "dh_prev[{i}]");
            let mut pc = c0.clone();
            pc[i] += eps;
            let mut mc = c0.clone();
            mc[i] -= eps;
            let fd = (loss_one_step(&wx, &bias, &wh, &x, &h0, &pc)
                - loss_one_step(&wx, &bias, &wh, &x, &h0, &mc))
                / (2.0 * eps);
            assert!((dc_prev[i] - fd).abs() < 2e-3, "dc_prev[{i}]");
        }
    }

    #[test]
    fn forward_shapes_and_gate_ranges() {
        let (inp, h) = (4usize, 3usize);
        let mut rng = stream(6, StreamTag::Init, 0, 0);
        let mut wx = Matrix::zeros(4 * h, inp);
        let mut wh = Matrix::zeros(4 * h, h);
        init::uniform(&mut wx, 1.0, &mut rng);
        init::uniform(&mut wh, 1.0, &mut rng);
        let bias = vec![0.0; 4 * h];
        let mut cache = StepCache::default();
        cell_forward(&wx, &bias, &wh, &[1.0; 4], &[0.0; 3], &[0.0; 3], &mut cache);
        assert_eq!(cache.h.len(), h);
        assert_eq!(cache.gates.len(), 4 * h);
        // σ gates in (0,1), tanh gate in (-1,1).
        for k in 0..h {
            assert!(cache.gates[k] > 0.0 && cache.gates[k] < 1.0);
            assert!(cache.gates[3 * h + k] > 0.0 && cache.gates[3 * h + k] < 1.0);
            assert!(cache.gates[2 * h + k].abs() < 1.0);
            assert!(cache.h[k].abs() <= 1.0);
        }
    }

    #[test]
    fn zero_recurrent_rows_decouple_history() {
        // With W_h = 0 (all recurrent rows dropped) the step must not depend
        // on h_prev — the spike-and-slab "dropped recurrent connection".
        let (inp, h) = (2usize, 2usize);
        let mut rng = stream(8, StreamTag::Init, 0, 0);
        let mut wx = Matrix::zeros(4 * h, inp);
        init::uniform(&mut wx, 0.7, &mut rng);
        let wh = Matrix::zeros(4 * h, h);
        let bias = vec![0.1; 4 * h];
        let mut a = StepCache::default();
        let mut b = StepCache::default();
        cell_forward(
            &wx,
            &bias,
            &wh,
            &[0.5, -0.5],
            &[0.9, -0.9],
            &[0.0; 2],
            &mut a,
        );
        cell_forward(
            &wx,
            &bias,
            &wh,
            &[0.5, -0.5],
            &[-0.3, 0.3],
            &[0.0; 2],
            &mut b,
        );
        assert_eq!(a.h, b.h);
    }
}
