//! Activation functions.
//!
//! The paper's Assumption 1 requires 1-Lipschitz activations; ReLU, tanh and
//! sigmoid (the three the paper names) all satisfy it.

use serde::{Deserialize, Serialize};

/// Supported activation functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity (no nonlinearity) — used by output heads before softmax.
    Linear,
    /// max(0, x)
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Apply in place.
    pub fn forward(self, xs: &mut [f32]) {
        match self {
            Activation::Linear => {}
            Activation::Relu => {
                for x in xs {
                    if *x < 0.0 {
                        *x = 0.0;
                    }
                }
            }
            Activation::Tanh => {
                for x in xs {
                    *x = x.tanh();
                }
            }
            Activation::Sigmoid => {
                for x in xs {
                    *x = sigmoid(*x);
                }
            }
        }
    }

    /// Multiply `grad` by the activation derivative, expressed in terms of
    /// the *outputs* `ys` (all three nonlinearities admit this form, which
    /// avoids caching pre-activations).
    pub fn backward_from_output(self, ys: &[f32], grad: &mut [f32]) {
        debug_assert_eq!(ys.len(), grad.len());
        match self {
            Activation::Linear => {}
            Activation::Relu => {
                for (g, &y) in grad.iter_mut().zip(ys) {
                    if y <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Activation::Tanh => {
                for (g, &y) in grad.iter_mut().zip(ys) {
                    *g *= 1.0 - y * y;
                }
            }
            Activation::Sigmoid => {
                for (g, &y) in grad.iter_mut().zip(ys) {
                    *g *= y * (1.0 - y);
                }
            }
        }
    }
}

/// Numerically stable logistic sigmoid.
#[inline(always)]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut xs = vec![-1.0, 0.0, 2.0];
        Activation::Relu.forward(&mut xs);
        assert_eq!(xs, vec![0.0, 0.0, 2.0]);
        let mut g = vec![1.0, 1.0, 1.0];
        Activation::Relu.backward_from_output(&xs, &mut g);
        assert_eq!(g, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0) >= 0.0);
        let x = 1.234f32;
        assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tanh_backward_matches_finite_difference() {
        let x = 0.7f32;
        let mut y = vec![x];
        Activation::Tanh.forward(&mut y);
        let mut g = vec![1.0];
        Activation::Tanh.backward_from_output(&y, &mut g);
        let eps = 1e-3;
        let fd = ((x + eps).tanh() - (x - eps).tanh()) / (2.0 * eps);
        assert!((g[0] - fd).abs() < 1e-4, "{} vs {}", g[0], fd);
    }

    #[test]
    fn activations_are_one_lipschitz_on_samples() {
        // Assumption 1 of the paper: |f(a)-f(b)| <= |a-b|.
        for act in [Activation::Relu, Activation::Tanh, Activation::Sigmoid] {
            for i in -20..20 {
                let a = i as f32 * 0.25;
                let b = a + 0.1;
                let mut va = vec![a];
                let mut vb = vec![b];
                act.forward(&mut va);
                act.forward(&mut vb);
                assert!(
                    (va[0] - vb[0]).abs() <= 0.1 + 1e-6,
                    "{act:?} not 1-Lipschitz at {a}"
                );
            }
        }
    }
}
