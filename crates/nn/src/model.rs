//! The [`Model`] trait: the contract between architectures (MLP, LSTM LM)
//! and the federated-learning machinery.
//!
//! Models are *stateless descriptions*; all learnable state lives in a
//! [`ParamSet`], which is what the FL server aggregates. This mirrors the
//! paper's separation between the model structure `(S, L, D)` and the
//! variational parameters `U` (§IV-A).

use crate::params::{ArchInfo, ParamSet};
use fedbiad_tensor::Workspace;
use rand::rngs::StdRng;

/// A mini-batch view. Image models consume [`Batch::Dense`]; language
/// models consume [`Batch::Seq`].
#[derive(Clone, Debug)]
pub enum Batch<'a> {
    /// `n` samples of `dim` features each, flattened row-major, with class
    /// labels.
    Dense {
        /// Flat feature buffer, length `n * dim`.
        x: &'a [f32],
        /// Labels, length `n`.
        y: &'a [u32],
        /// Feature dimension.
        dim: usize,
    },
    /// Token windows for next-word prediction: each window has length
    /// `seq_len + 1`; positions `0..seq_len` are inputs, `1..=seq_len` are
    /// targets.
    Seq {
        /// Borrowed windows into a client's token stream.
        windows: &'a [&'a [u32]],
    },
}

impl Batch<'_> {
    /// Number of samples (windows count as one sample each).
    pub fn len(&self) -> usize {
        match self {
            Batch::Dense { y, .. } => y.len(),
            Batch::Seq { windows } => windows.len(),
        }
    }

    /// `true` when the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Accumulated evaluation statistics; merge partial results with
/// [`EvalAccum::merge`].
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalAccum {
    /// Sum of per-prediction losses.
    pub loss_sum: f64,
    /// Number of top-k-correct predictions.
    pub correct: u64,
    /// Number of predictions scored.
    pub count: u64,
}

impl EvalAccum {
    /// Combine two partial accumulations.
    pub fn merge(&mut self, other: &EvalAccum) {
        self.loss_sum += other.loss_sum;
        self.correct += other.correct;
        self.count += other.count;
    }

    /// Mean loss (0 when empty).
    pub fn mean_loss(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.loss_sum / self.count as f64
        }
    }

    /// Top-k accuracy in \[0,1\] (0 when empty).
    pub fn accuracy(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.correct as f64 / self.count as f64
        }
    }
}

/// Architecture contract used by the FL stack.
pub trait Model: Send + Sync {
    /// Human-readable name.
    fn name(&self) -> &str;

    /// `(N, L, D, d)` descriptor for the Theorem-1 calculator.
    fn arch(&self) -> ArchInfo;

    /// Freshly initialised parameters.
    fn init_params(&self, rng: &mut StdRng) -> ParamSet;

    /// Mean loss over `batch`; accumulates parameter gradients into `grads`
    /// (caller zeroes `grads` beforehand when starting a new step).
    ///
    /// This is the **per-sample reference path**: each sample's forward
    /// and backward pass runs as a chain of GEMV/GER calls. The batched
    /// engine ([`Model::loss_grad_batched`]) must reproduce it bit for
    /// bit; `tests/batched_equivalence.rs` pins that contract.
    fn loss_grad(&self, params: &ParamSet, batch: &Batch<'_>, grads: &mut ParamSet) -> f32;

    /// Forward-only evaluation with top-`k` accuracy (per-sample
    /// reference path).
    fn evaluate(&self, params: &ParamSet, batch: &Batch<'_>, k: usize) -> EvalAccum;

    /// Batched-engine [`Model::loss_grad`]: processes the whole
    /// mini-batch per GEMM, with all scratch buffers checked out of the
    /// caller's per-client [`Workspace`] arena (zero allocations once the
    /// arena is warm). Results are bit-identical to [`Model::loss_grad`];
    /// the default implementation simply *is* the reference path, so
    /// architectures without a batched engine stay correct.
    fn loss_grad_batched(
        &self,
        params: &ParamSet,
        batch: &Batch<'_>,
        grads: &mut ParamSet,
        _ws: &mut Workspace,
    ) -> f32 {
        self.loss_grad(params, batch, grads)
    }

    /// Batched-engine [`Model::evaluate`]; same contract as
    /// [`Model::loss_grad_batched`].
    fn evaluate_batched(
        &self,
        params: &ParamSet,
        batch: &Batch<'_>,
        k: usize,
        _ws: &mut Workspace,
    ) -> EvalAccum {
        self.evaluate(params, batch, k)
    }
}

/// Forces the per-sample reference path of a wrapped model: the batched
/// entry points fall back to their defaults (which call the reference
/// implementations). The differential tests and the perf harness use this
/// to run the exact same architecture down both code paths.
pub struct ReferencePath<'a>(pub &'a dyn Model);

impl Model for ReferencePath<'_> {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn arch(&self) -> ArchInfo {
        self.0.arch()
    }

    fn init_params(&self, rng: &mut StdRng) -> ParamSet {
        self.0.init_params(rng)
    }

    fn loss_grad(&self, params: &ParamSet, batch: &Batch<'_>, grads: &mut ParamSet) -> f32 {
        self.0.loss_grad(params, batch, grads)
    }

    fn evaluate(&self, params: &ParamSet, batch: &Batch<'_>, k: usize) -> EvalAccum {
        self.0.evaluate(params, batch, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_accum_merges_and_divides() {
        let mut a = EvalAccum {
            loss_sum: 2.0,
            correct: 1,
            count: 2,
        };
        let b = EvalAccum {
            loss_sum: 4.0,
            correct: 3,
            count: 4,
        };
        a.merge(&b);
        assert_eq!(a.count, 6);
        assert!((a.mean_loss() - 1.0).abs() < 1e-12);
        assert!((a.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        let empty = EvalAccum::default();
        assert_eq!(empty.mean_loss(), 0.0);
        assert_eq!(empty.accuracy(), 0.0);
    }

    #[test]
    fn batch_len_counts_samples() {
        let x = vec![0.0; 6];
        let y = vec![0, 1, 0];
        let b = Batch::Dense {
            x: &x,
            y: &y,
            dim: 2,
        };
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        let w1 = [1u32, 2, 3];
        let windows: Vec<&[u32]> = vec![&w1];
        let s = Batch::Seq { windows: &windows };
        assert_eq!(s.len(), 1);
    }
}
