//! SGD optimiser.
//!
//! The paper trains image models with plain SGD and language models with
//! "SGD with the clipped gradient norm" (§V-A). The KL(π̃‖π) ≈ L2 term of
//! loss (2) is *not* folded in here: the FedBIAD client applies weight decay
//! to the gradient **before** masking it with β (eq. (7)), so decay is a
//! training-loop concern — see `fedbiad-fl::client`.

use crate::params::ParamSet;
use serde::{Deserialize, Serialize};

/// Plain SGD with optional global gradient-norm clipping.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate η (eq. (7)).
    pub lr: f32,
    /// Clip the global gradient norm to this value when set.
    pub clip_norm: Option<f32>,
}

impl Sgd {
    /// Constructor without clipping.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            clip_norm: None,
        }
    }

    /// Constructor with clipping (LSTM language models).
    pub fn with_clip(lr: f32, clip: f32) -> Self {
        Self {
            lr,
            clip_norm: Some(clip),
        }
    }

    /// One update: optionally clip `grads`, then `params -= lr * grads`.
    /// `grads` is taken mutably because clipping scales it in place.
    pub fn step(&self, params: &mut ParamSet, grads: &mut ParamSet) {
        if let Some(c) = self.clip_norm {
            grads.clip_global_norm(c);
        }
        params.axpy(-self.lr, grads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{EntryMeta, LayerKind};
    use fedbiad_tensor::Matrix;

    fn one_entry(v: f32) -> ParamSet {
        let mut p = ParamSet::new();
        p.push_entry(
            Matrix::full(2, 2, v),
            None,
            EntryMeta::new("w", LayerKind::DenseHidden, false, true),
        );
        p
    }

    #[test]
    fn step_moves_against_gradient() {
        let mut p = one_entry(1.0);
        let mut g = one_entry(2.0);
        Sgd::new(0.5).step(&mut p, &mut g);
        assert_eq!(p.mat(0).get(0, 0), 0.0);
    }

    #[test]
    fn clip_limits_step_size() {
        let mut p = one_entry(0.0);
        let mut g = one_entry(100.0);
        Sgd::with_clip(1.0, 1.0).step(&mut p, &mut g);
        // ‖g‖ clipped to 1 ⇒ each of the 4 equal entries is 0.5.
        assert!((p.mat(0).get(0, 0) + 0.5).abs() < 1e-6);
        assert!((p.l2_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn zero_lr_is_identity() {
        let mut p = one_entry(3.0);
        let q = p.clone();
        let mut g = one_entry(5.0);
        Sgd::new(0.0).step(&mut p, &mut g);
        assert_eq!(p.flatten(), q.flatten());
    }
}
