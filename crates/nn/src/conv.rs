//! 2-D convolution + max-pool kernels for the CNN model.
//!
//! The paper extends FedBIAD to CNNs with *filter-wise* dropout (§IV-C):
//! "we view weights by filters and dropout is filter-wise... if the j-th
//! filter has the dropping label β = 0, all weights in this filter are
//! zeroed out". A conv layer's weights are stored as a matrix with one
//! **row per output filter** (row-major `in_ch · kh · kw` columns), so the
//! existing row-unit registry expresses filter dropout with no special
//! cases.

use fedbiad_tensor::{ops, Matrix};

/// Shape of a conv layer's input feature map.
#[derive(Clone, Copy, Debug)]
pub struct ConvShape {
    /// Input channels.
    pub in_ch: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
}

impl ConvShape {
    /// Flattened length.
    pub fn len(&self) -> usize {
        self.in_ch * self.h * self.w
    }

    /// `true` when any dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Output shape after a valid (no-padding) `k×k` convolution with
    /// `out_ch` filters.
    pub fn conv_out(&self, out_ch: usize, k: usize) -> ConvShape {
        assert!(self.h >= k && self.w >= k, "kernel larger than input");
        ConvShape {
            in_ch: out_ch,
            h: self.h - k + 1,
            w: self.w - k + 1,
        }
    }

    /// Output shape after non-overlapping 2×2 max pooling (floor).
    pub fn pool2_out(&self) -> ConvShape {
        ConvShape {
            in_ch: self.in_ch,
            h: self.h / 2,
            w: self.w / 2,
        }
    }
}

/// Forward over pre-extracted im2col patches: `y[f, pos] = b[f] +
/// dot(filter_f, patch_pos)` — the GEMM formulation of the convolution.
/// `patches` has one `in_ch·k·k` row per output position
/// ([`fedbiad_tensor::ops::im2col`] layout), `y` is filter-major.
pub fn conv2d_forward_patches(w: &Matrix, bias: &[f32], patches: &[f32], y: &mut [f32]) {
    let ckk = w.cols();
    let pos = patches.len().checked_div(ckk).unwrap_or(0);
    debug_assert_eq!(patches.len(), pos * ckk);
    debug_assert_eq!(y.len(), w.rows() * pos);
    for (f, yrow) in y.chunks_exact_mut(pos.max(1)).enumerate() {
        let filt = w.row(f);
        let b = if bias.is_empty() { 0.0 } else { bias[f] };
        for (p, yv) in yrow.iter_mut().enumerate() {
            *yv = b + ops::dot(filt, &patches[p * ckk..(p + 1) * ckk]);
        }
    }
}

/// Backward over patches: accumulates `dw[f] += Σ_pos dy[f,pos] ·
/// patch_pos` (position-ascending AXPYs, zero-skipped) and `db[f] +=
/// Σ_pos dy[f,pos]`; optionally writes patch-space input gradients
/// `dpatches[pos] = Σ_f dy[f,pos] · filter_f` (zero-filled first) for the
/// caller to [`fedbiad_tensor::ops::col2im_acc`] back onto the image.
pub fn conv2d_backward_patches(
    w: &Matrix,
    patches: &[f32],
    dy: &[f32],
    dw: &mut Matrix,
    db: &mut [f32],
    dpatches: Option<&mut [f32]>,
) {
    let ckk = w.cols();
    let pos = patches.len().checked_div(ckk).unwrap_or(0);
    debug_assert_eq!(dy.len(), w.rows() * pos);
    for f in 0..w.rows() {
        let grow = &dy[f * pos..(f + 1) * pos];
        if !db.is_empty() {
            for &g in grow {
                db[f] += g;
            }
        }
        let drow = dw.row_mut(f);
        for (p, &g) in grow.iter().enumerate() {
            if g != 0.0 {
                ops::axpy(g, &patches[p * ckk..(p + 1) * ckk], drow);
            }
        }
    }
    if let Some(dp) = dpatches {
        dp.fill(0.0);
        for f in 0..w.rows() {
            let grow = &dy[f * pos..(f + 1) * pos];
            let filt = w.row(f);
            for (p, &g) in grow.iter().enumerate() {
                if g != 0.0 {
                    ops::axpy(g, filt, &mut dp[p * ckk..(p + 1) * ckk]);
                }
            }
        }
    }
}

/// Valid convolution forward: `y[f, oy, ox] = b[f] + Σ_c,ky,kx
/// w[f, c, ky, kx] · x[c, oy+ky, ox+kx]`. `w` has one row per filter.
///
/// Implemented as im2col + [`conv2d_forward_patches`], so the per-sample
/// reference and the batched engine share one association order (each
/// output is one 4-lane `dot` over the flattened patch).
///
/// This convenience wrapper allocates its patch buffer per call: it is
/// the *reference path* (and the standalone-kernel API), kept simple on
/// purpose. The steady-state training loop goes through the CNN's
/// batched engine, which feeds [`conv2d_forward_patches`] from the
/// per-client workspace arena instead.
pub fn conv2d_forward(
    w: &Matrix,
    bias: &[f32],
    x: &[f32],
    shape: ConvShape,
    k: usize,
    y: &mut [f32],
) {
    let out = shape.conv_out(w.rows(), k);
    debug_assert_eq!(w.cols(), shape.in_ch * k * k, "filter width");
    debug_assert_eq!(x.len(), shape.len());
    debug_assert_eq!(y.len(), out.len());
    let mut patches = vec![0.0f32; out.h * out.w * w.cols()];
    ops::im2col(x, shape.in_ch, shape.h, shape.w, k, &mut patches);
    conv2d_forward_patches(w, bias, &patches, y);
}

/// Backward through [`conv2d_forward`]: accumulates `dw`, `db`, and
/// (optionally) writes `dx` (im2col + patch-space backward + col2im).
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward(
    w: &Matrix,
    x: &[f32],
    shape: ConvShape,
    k: usize,
    dy: &[f32],
    dw: &mut Matrix,
    db: &mut [f32],
    dx: Option<&mut [f32]>,
) {
    let out = shape.conv_out(w.rows(), k);
    debug_assert_eq!(dy.len(), out.len());
    let mut patches = vec![0.0f32; out.h * out.w * w.cols()];
    ops::im2col(x, shape.in_ch, shape.h, shape.w, k, &mut patches);
    match dx {
        None => conv2d_backward_patches(w, &patches, dy, dw, db, None),
        Some(dx) => {
            debug_assert_eq!(dx.len(), shape.len());
            let mut dp = vec![0.0f32; patches.len()];
            conv2d_backward_patches(w, &patches, dy, dw, db, Some(&mut dp));
            dx.fill(0.0);
            ops::col2im_acc(&dp, shape.in_ch, shape.h, shape.w, k, dx);
        }
    }
}

/// Non-overlapping 2×2 max pool; records argmax indices for the backward.
pub fn maxpool2_forward(x: &[f32], shape: ConvShape, y: &mut [f32], argmax: &mut [usize]) {
    let out = shape.pool2_out();
    debug_assert_eq!(y.len(), out.len());
    debug_assert_eq!(argmax.len(), out.len());
    for c in 0..shape.in_ch {
        let plane = &x[c * shape.h * shape.w..];
        for oy in 0..out.h {
            for ox in 0..out.w {
                let mut best = f32::NEG_INFINITY;
                let mut best_i = 0;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let i = (oy * 2 + dy) * shape.w + ox * 2 + dx;
                        if plane[i] > best {
                            best = plane[i];
                            best_i = c * shape.h * shape.w + i;
                        }
                    }
                }
                let o = (c * out.h + oy) * out.w + ox;
                y[o] = best;
                argmax[o] = best_i;
            }
        }
    }
}

/// Max-pool backward: routes each output gradient to its argmax input.
pub fn maxpool2_backward(dy: &[f32], argmax: &[usize], dx: &mut [f32]) {
    dx.fill(0.0);
    for (g, &i) in dy.iter().zip(argmax) {
        dx[i] += g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_forward_matches_hand_example() {
        // 1×3×3 input, one 2×2 filter of ones, bias 0.5.
        let w = Matrix::from_rows(&[&[1.0, 1.0, 1.0, 1.0]]);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let shape = ConvShape {
            in_ch: 1,
            h: 3,
            w: 3,
        };
        let mut y = [0.0; 4];
        conv2d_forward(&w, &[0.5], &x, shape, 2, &mut y);
        assert_eq!(y, [12.5, 16.5, 24.5, 28.5]);
    }

    #[test]
    fn conv_gradcheck() {
        use fedbiad_tensor::init;
        use fedbiad_tensor::rng::{stream, StreamTag};
        let shape = ConvShape {
            in_ch: 2,
            h: 4,
            w: 4,
        };
        let (f, k) = (3usize, 3usize);
        let mut rng = stream(9, StreamTag::Init, 0, 0);
        let mut w = Matrix::zeros(f, shape.in_ch * k * k);
        init::uniform(&mut w, 0.5, &mut rng);
        let bias: Vec<f32> = (0..f).map(|i| 0.1 * i as f32).collect();
        let x: Vec<f32> = (0..shape.len())
            .map(|i| ((i * 7) % 5) as f32 * 0.2 - 0.4)
            .collect();
        let out = shape.conv_out(f, k);

        let loss_of = |w: &Matrix, b: &[f32], x: &[f32]| -> f32 {
            let mut y = vec![0.0; out.len()];
            conv2d_forward(w, b, x, shape, k, &mut y);
            0.5 * y.iter().map(|v| v * v).sum::<f32>()
        };

        let mut y = vec![0.0; out.len()];
        conv2d_forward(&w, &bias, &x, shape, k, &mut y);
        let dy = y.clone();
        let mut dw = Matrix::zeros(f, shape.in_ch * k * k);
        let mut db = vec![0.0; f];
        let mut dx = vec![0.0; shape.len()];
        conv2d_backward(&w, &x, shape, k, &dy, &mut dw, &mut db, Some(&mut dx));

        let eps = 1e-2;
        for (r, c) in [(0usize, 0usize), (1, 7), (2, 17)] {
            let mut p = w.clone();
            p.set(r, c, p.get(r, c) + eps);
            let mut m = w.clone();
            m.set(r, c, m.get(r, c) - eps);
            let fd = (loss_of(&p, &bias, &x) - loss_of(&m, &bias, &x)) / (2.0 * eps);
            assert!(
                (dw.get(r, c) - fd).abs() < 2e-2,
                "dw[{r},{c}]: {} vs {fd}",
                dw.get(r, c)
            );
        }
        for i in [0usize, 9, 31] {
            let mut p = x.clone();
            p[i] += eps;
            let mut m = x.clone();
            m[i] -= eps;
            let fd = (loss_of(&w, &bias, &p) - loss_of(&w, &bias, &m)) / (2.0 * eps);
            assert!((dx[i] - fd).abs() < 2e-2, "dx[{i}]");
        }
        for r in 0..f {
            let mut p = bias.clone();
            p[r] += eps;
            let mut m = bias.clone();
            m[r] -= eps;
            let fd = (loss_of(&w, &p, &x) - loss_of(&w, &m, &x)) / (2.0 * eps);
            assert!((db[r] - fd).abs() < 2e-2, "db[{r}]");
        }
    }

    #[test]
    fn maxpool_routes_gradient_to_argmax() {
        let shape = ConvShape {
            in_ch: 1,
            h: 4,
            w: 4,
        };
        let x = [
            1.0, 2.0, 0.0, 0.0, //
            3.0, 4.0, 0.0, 5.0, //
            0.0, 0.0, 9.0, 0.0, //
            0.0, 7.0, 0.0, 8.0,
        ];
        let out = shape.pool2_out();
        let mut y = vec![0.0; out.len()];
        let mut arg = vec![0usize; out.len()];
        maxpool2_forward(&x, shape, &mut y, &mut arg);
        assert_eq!(y, vec![4.0, 5.0, 7.0, 9.0]);
        let mut dx = vec![0.0; 16];
        maxpool2_backward(&[1.0, 2.0, 3.0, 4.0], &arg, &mut dx);
        assert_eq!(dx[5], 1.0); // 4.0's position
        assert_eq!(dx[7], 2.0); // 5.0's position
        assert_eq!(dx[13], 3.0); // 7.0's position
        assert_eq!(dx[10], 4.0); // 9.0's position
    }

    #[test]
    fn zeroed_filter_row_produces_constant_plane() {
        // Filter-wise dropout semantics: zeroing filter row j (incl. bias)
        // makes its whole output plane zero.
        let mut w = Matrix::from_rows(&[&[0.3, -0.2, 0.5, 0.1], &[1.0, 1.0, 1.0, 1.0]]);
        let mut b = vec![0.2, 0.4];
        w.zero_row(0);
        b[0] = 0.0;
        let shape = ConvShape {
            in_ch: 1,
            h: 3,
            w: 3,
        };
        let mut y = vec![0.0; 8];
        conv2d_forward(&w, &b, &[1.0; 9], shape, 2, &mut y);
        assert!(y[..4].iter().all(|&v| v == 0.0));
        assert!(y[4..].iter().all(|&v| v == 4.4));
    }
}
