//! The paper's next-word-prediction model (§V-A): an embedding layer, a
//! stack of LSTM layers and a fully-connected head over the vocabulary.
//! Paper configuration: 300-dim embedding, two LSTM layers with 300 hidden
//! units; with a 10k vocabulary this is exactly the 29.8 MB PTB/Reddit
//! model of Table I.

use crate::lstm::{self, cell_backward, cell_forward, StepCache};
use crate::model::{Batch, EvalAccum, Model};
use crate::params::{ArchInfo, EntryMeta, LayerKind, ParamSet};
use crate::softmax;
use fedbiad_tensor::{init, ops, stats, Matrix, Workspace};
use rand::rngs::StdRng;

/// Embedding + stacked-LSTM + FC-head language model.
#[derive(Clone, Debug)]
pub struct LstmLmModel {
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding dimension.
    pub embed: usize,
    /// LSTM hidden width H.
    pub hidden: usize,
    /// Number of stacked LSTM layers (paper: 2).
    pub layers: usize,
}

impl LstmLmModel {
    /// Convenience constructor.
    pub fn new(vocab: usize, embed: usize, hidden: usize, layers: usize) -> Self {
        assert!(layers >= 1, "need at least one LSTM layer");
        Self {
            vocab,
            embed,
            hidden,
            layers,
        }
    }

    /// Paper-scale PTB/Reddit model (Table I: 29.8 MB). The vocabulary is
    /// 10,600 — the value that makes emb(V×300) + 2×LSTM(300) + head(300×V)
    /// total exactly 29.8 MB of f32 weights; the paper's PTB vocabulary is
    /// "10k-ish" and the exact count is not stated, so we pin it to the
    /// reported upload size.
    pub fn paper_ptb() -> Self {
        Self::new(10_600, 300, 300, 2)
    }

    /// Paper-scale WikiText-2 model (Table I: 75.3 MB; "a vocabulary of
    /// more than 30,000 words").
    pub fn paper_wikitext2() -> Self {
        Self::new(30_442, 300, 300, 2)
    }

    /// ParamSet entry index of the embedding table.
    pub fn emb_entry(&self) -> usize {
        0
    }

    /// ParamSet entry index of layer `l`'s input matrix W_x.
    pub fn wx_entry(&self, l: usize) -> usize {
        1 + 2 * l
    }

    /// ParamSet entry index of layer `l`'s recurrent matrix W_h.
    pub fn wh_entry(&self, l: usize) -> usize {
        2 + 2 * l
    }

    /// ParamSet entry index of the output head.
    pub fn head_entry(&self) -> usize {
        1 + 2 * self.layers
    }

    /// Forward one window, filling per-(layer, step) caches and per-step
    /// logits. Returns the number of predictions made.
    fn forward_window(
        &self,
        params: &ParamSet,
        window: &[u32],
        caches: &mut Vec<Vec<StepCache>>,
        logits: &mut Vec<Vec<f32>>,
    ) -> usize {
        let steps = window.len() - 1;
        let h = self.hidden;
        caches.clear();
        caches.resize_with(self.layers, Vec::new);
        for lc in caches.iter_mut() {
            lc.resize_with(steps, StepCache::default);
        }
        logits.clear();
        logits.resize_with(steps, || vec![0.0f32; self.vocab]);

        let mut h_state = vec![vec![0.0f32; h]; self.layers];
        let mut c_state = vec![vec![0.0f32; h]; self.layers];
        let emb = params.mat(self.emb_entry());
        let mut x_buf = vec![0.0f32; self.embed.max(h)];

        for t in 0..steps {
            let tok = window[t] as usize;
            debug_assert!(tok < self.vocab, "token out of vocabulary");
            x_buf[..self.embed].copy_from_slice(emb.row(tok));
            let mut x_len = self.embed;
            for l in 0..self.layers {
                let wx = params.mat(self.wx_entry(l));
                let bias = params.bias(self.wx_entry(l));
                let wh = params.mat(self.wh_entry(l));
                let cache = &mut caches[l][t];
                cell_forward(
                    wx,
                    bias,
                    wh,
                    &x_buf[..x_len],
                    &h_state[l],
                    &c_state[l],
                    cache,
                );
                h_state[l].copy_from_slice(&cache.h);
                c_state[l].copy_from_slice(&cache.c);
                // Next layer's input is this layer's hidden state.
                x_buf[..h].copy_from_slice(&cache.h);
                x_len = h;
            }
            let head = params.mat(self.head_entry());
            let hb = params.bias(self.head_entry());
            ops::gemv(head, &caches[self.layers - 1][t].h, hb, &mut logits[t]);
        }
        steps
    }
}

impl Model for LstmLmModel {
    fn name(&self) -> &str {
        "lstm_lm"
    }

    fn arch(&self) -> ArchInfo {
        let mut n = self.vocab * self.embed; // embedding
        for l in 0..self.layers {
            let input = if l == 0 { self.embed } else { self.hidden };
            n += 4 * self.hidden * input + 4 * self.hidden; // W_x + bias
            n += 4 * self.hidden * self.hidden; // W_h
        }
        n += self.vocab * self.hidden + self.vocab; // head
        ArchInfo {
            total_weights: n,
            depth: self.layers + 2,
            width: self.hidden,
            input_dim: self.embed,
        }
    }

    fn init_params(&self, rng: &mut StdRng) -> ParamSet {
        let mut p = ParamSet::new();
        let mut emb = Matrix::zeros(self.vocab, self.embed);
        init::uniform(&mut emb, 0.08, rng);
        p.push_entry(
            emb,
            None,
            EntryMeta::new("emb", LayerKind::Embedding, false, true),
        );
        for l in 0..self.layers {
            let input = if l == 0 { self.embed } else { self.hidden };
            let mut wx = Matrix::zeros(4 * self.hidden, input);
            init::xavier(&mut wx, input, self.hidden, rng);
            // Forget-gate bias initialised to 1.0 — standard LSTM practice
            // so early training does not forget everything.
            let mut bias = vec![0.0f32; 4 * self.hidden];
            for b in bias.iter_mut().skip(self.hidden).take(self.hidden) {
                *b = 1.0;
            }
            // gate_groups = 4: one droppable unit = the hidden unit's
            // 4 gate rows, so dropping it silences the whole activation
            // (spike-and-slab rows ↔ activations, paper §III-C).
            p.push_entry(
                wx,
                Some(bias),
                EntryMeta {
                    gate_groups: 4,
                    ..EntryMeta::new(format!("lstm{l}.wx"), LayerKind::LstmInput, true, true)
                },
            );
            let mut wh = Matrix::zeros(4 * self.hidden, self.hidden);
            init::xavier(&mut wh, self.hidden, self.hidden, rng);
            p.push_entry(
                wh,
                None,
                EntryMeta {
                    gate_groups: 4,
                    ..EntryMeta::new(format!("lstm{l}.wh"), LayerKind::LstmRecurrent, false, true)
                },
            );
        }
        let mut head = Matrix::zeros(self.vocab, self.hidden);
        init::xavier(&mut head, self.hidden, self.vocab, rng);
        p.push_entry(
            head,
            Some(vec![0.0; self.vocab]),
            EntryMeta::new("head", LayerKind::DenseOutput, true, true),
        );
        p
    }

    fn loss_grad(&self, params: &ParamSet, batch: &Batch<'_>, grads: &mut ParamSet) -> f32 {
        let windows = match batch {
            Batch::Seq { windows } => *windows,
            Batch::Dense { .. } => panic!("LstmLmModel expects Batch::Seq"),
        };
        assert!(!windows.is_empty(), "empty batch");
        let total_preds: usize = windows.iter().map(|w| w.len() - 1).sum();
        let inv = 1.0 / total_preds as f32;
        let h = self.hidden;

        let mut caches: Vec<Vec<StepCache>> = Vec::new();
        let mut logits: Vec<Vec<f32>> = Vec::new();
        let mut loss_sum = 0.0f32;

        for window in windows {
            assert!(window.len() >= 2, "window needs at least 2 tokens");
            let steps = self.forward_window(params, window, &mut caches, &mut logits);

            // Per-step loss + dlogits (in place).
            for t in 0..steps {
                let target = window[t + 1] as usize;
                loss_sum += softmax::softmax_xent_grad(&mut logits[t], target);
                for g in logits[t].iter_mut() {
                    *g *= inv;
                }
            }

            // BPTT: t descending; carries flow t+1 → t per layer.
            let mut dh_carry = vec![vec![0.0f32; h]; self.layers];
            let mut dc_carry = vec![vec![0.0f32; h]; self.layers];
            let mut dh_buf = vec![0.0f32; h];
            let mut dx_buf = vec![0.0f32; self.embed.max(h)];
            let mut dh_prev = vec![0.0f32; h];
            let mut dc_prev = vec![0.0f32; h];

            for t in (0..steps).rev() {
                // Head backward: dW += dlogits ⊗ h_top, db += dlogits,
                // dh_top = headᵀ dlogits.
                let top_h = &caches[self.layers - 1][t].h;
                {
                    let (wg, bg) = grads.mat_bias_mut(self.head_entry());
                    ops::ger(wg, 1.0, &logits[t], top_h);
                    ops::axpy(1.0, &logits[t], bg);
                }
                ops::gemv_t(params.mat(self.head_entry()), &logits[t], &mut dh_buf);

                for l in (0..self.layers).rev() {
                    // Total dh = upstream (head or layer above) + future step.
                    ops::axpy(1.0, &dh_carry[l], &mut dh_buf);
                    let in_dim = if l == 0 { self.embed } else { h };
                    {
                        let wx = params.mat(self.wx_entry(l));
                        let wh = params.mat(self.wh_entry(l));
                        let ((dwx, dbias), (dwh, _)) =
                            grads.entries_mut2(self.wx_entry(l), self.wh_entry(l));
                        cell_backward(
                            wx,
                            wh,
                            &caches[l][t],
                            &dh_buf,
                            &dc_carry[l],
                            dwx,
                            dbias,
                            dwh,
                            &mut dx_buf[..in_dim],
                            &mut dh_prev,
                            &mut dc_prev,
                        );
                    }
                    dh_carry[l].copy_from_slice(&dh_prev);
                    dc_carry[l].copy_from_slice(&dc_prev);
                    if l > 0 {
                        dh_buf.copy_from_slice(&dx_buf[..h]);
                    } else {
                        let tok = window[t] as usize;
                        let erow = grads.mat_mut(self.emb_entry()).row_mut(tok);
                        ops::axpy(1.0, &dx_buf[..self.embed], erow);
                    }
                }
            }
        }
        loss_sum * inv
    }

    fn evaluate(&self, params: &ParamSet, batch: &Batch<'_>, k: usize) -> EvalAccum {
        let windows = match batch {
            Batch::Seq { windows } => *windows,
            Batch::Dense { .. } => panic!("LstmLmModel expects Batch::Seq"),
        };
        let mut caches: Vec<Vec<StepCache>> = Vec::new();
        let mut logits: Vec<Vec<f32>> = Vec::new();
        let mut acc = EvalAccum::default();
        for window in windows {
            let steps = self.forward_window(params, window, &mut caches, &mut logits);
            for t in 0..steps {
                let target = window[t + 1] as usize;
                if stats::in_top_k(&logits[t], target, k) {
                    acc.correct += 1;
                }
                acc.loss_sum += softmax::softmax_xent_loss(&mut logits[t], target) as f64;
                acc.count += 1;
            }
        }
        acc
    }

    fn loss_grad_batched(
        &self,
        params: &ParamSet,
        batch: &Batch<'_>,
        grads: &mut ParamSet,
        ws: &mut Workspace,
    ) -> f32 {
        let windows = match batch {
            Batch::Seq { windows } => *windows,
            Batch::Dense { .. } => panic!("LstmLmModel expects Batch::Seq"),
        };
        assert!(!windows.is_empty(), "empty batch");
        let Some(fwd) = BatchedForward::run(self, params, windows, ws) else {
            // Ragged window lengths: the batched time loop needs one
            // uniform step count; fall back to the per-window reference.
            return self.loss_grad(params, batch, grads);
        };
        let (n, s) = (fwd.n, fwd.s);
        let _gemm_span = fedbiad_telemetry::span!("nn.batch.loss_grad", n = n, steps = s);
        fedbiad_telemetry::gauge!("nn.ws_churn", ws.churn());
        let (h, e) = (self.hidden, self.embed);
        let inv = 1.0 / (n * s) as f32;

        // Per-row softmax + mean-reduce scaling. Individual losses are
        // staged so the final fold can replay the reference's running-sum
        // order (window-major, step-ascending).
        let mut fwd = fwd;
        let mut loss_buf = ws.take(s * n);
        for t in 0..s {
            for (wi, win) in windows.iter().enumerate() {
                let row = &mut fwd.logits.row_mut(t * n + wi)[..];
                loss_buf[t * n + wi] = softmax::softmax_xent_grad(row, win[t + 1] as usize);
                for g in row.iter_mut() {
                    *g *= inv;
                }
            }
        }
        let mut loss_sum = 0.0f32;
        for wi in 0..n {
            for t in 0..s {
                loss_sum += loss_buf[t * n + wi];
            }
        }
        ws.give(loss_buf);

        // BPTT over step blocks: carries flow t+1 → t per layer exactly as
        // in the reference; gate deltas land in dz_all for the ordered
        // accumulation below.
        let mut dz_all = ws.take_shell();
        for _ in 0..self.layers {
            dz_all.push(ws.take_matrix(s * n, 4 * h));
        }
        let mut dx0 = ws.take_matrix(s * n, e);
        let mut dh_carry = ws.take_shell();
        let mut dc_carry = ws.take_shell();
        for _ in 0..self.layers {
            dh_carry.push(ws.take_matrix(n, h));
            dc_carry.push(ws.take_matrix(n, h));
        }
        let mut dh_mat = ws.take(n * h);
        let mut prev_tmp = ws.take_matrix(n, h);
        let head = params.mat(self.head_entry());
        for t in (0..s).rev() {
            let dlog = &fwd.logits.as_slice()[t * n * self.vocab..(t + 1) * n * self.vocab];
            ops::gemm_nn(dlog, head, n, &mut dh_mat);
            for l in (0..self.layers).rev() {
                ops::axpy(1.0, dh_carry[l].as_slice(), &mut dh_mat);
                let gates_t = &fwd.gates[l].as_slice()[t * n * 4 * h..(t + 1) * n * 4 * h];
                let tanh_t = &fwd.tanh_c[l].as_slice()[t * n * h..(t + 1) * n * h];
                let c_prev_t = &fwd.c_all[l].as_slice()[t * n * h..(t + 1) * n * h];
                let dz_t = &mut dz_all[l].as_mut_slice()[t * n * 4 * h..(t + 1) * n * 4 * h];
                lstm::cell_backward_block(
                    gates_t,
                    tanh_t,
                    c_prev_t,
                    &dh_mat,
                    dc_carry[l].as_slice(),
                    dz_t,
                    prev_tmp.as_mut_slice(),
                    n,
                    h,
                );
                std::mem::swap(&mut dc_carry[l], &mut prev_tmp);
                let dz_t = &dz_all[l].as_slice()[t * n * 4 * h..(t + 1) * n * 4 * h];
                ops::gemm_nn(
                    dz_t,
                    params.mat(self.wh_entry(l)),
                    n,
                    prev_tmp.as_mut_slice(),
                );
                std::mem::swap(&mut dh_carry[l], &mut prev_tmp);
                if l > 0 {
                    ops::gemm_nn(dz_t, params.mat(self.wx_entry(l)), n, &mut dh_mat);
                } else {
                    let dx0_t = &mut dx0.as_mut_slice()[t * n * e..(t + 1) * n * e];
                    ops::gemm_nn(dz_t, params.mat(self.wx_entry(0)), n, dx0_t);
                }
            }
        }

        // Gradient accumulation replaying the sequential reference's
        // association order: window-major, step-descending.
        let mut order = ws.take_usize(s * n);
        {
            let mut i = 0;
            for wi in 0..n {
                for t in (0..s).rev() {
                    order[i] = t * n + wi;
                    i += 1;
                }
            }
        }
        {
            let (hw, hb) = grads.mat_bias_mut(self.head_entry());
            // h_top of step t lives in block t+1 of h_all ⇒ row offset n.
            ops::gemm_tn_acc_ord(
                fwd.logits.as_slice(),
                fwd.h_all[self.layers - 1].as_slice(),
                &order,
                n,
                hw,
            );
            ops::add_row_sums_ord(fwd.logits.as_slice(), &order, hb);
        }
        // Indexing by layer is the natural shape here: `l` addresses four
        // parallel per-layer buffer vectors plus the entry registry.
        #[allow(clippy::needless_range_loop)]
        for l in 0..self.layers {
            let (x_buf, x_off) = if l == 0 {
                (fwd.emb_x.as_slice(), 0)
            } else {
                (fwd.h_all[l - 1].as_slice(), n)
            };
            let ((dwx, dbias), (dwh, _)) = grads.entries_mut2(self.wx_entry(l), self.wh_entry(l));
            ops::gemm_tn_acc_ord(dz_all[l].as_slice(), x_buf, &order, x_off, dwx);
            ops::add_row_sums_ord(dz_all[l].as_slice(), &order, dbias);
            ops::gemm_tn_acc_ord(
                dz_all[l].as_slice(),
                fwd.h_all[l].as_slice(),
                &order,
                0,
                dwh,
            );
        }
        // Embedding rows can collide across (window, step); scatter in the
        // same window-major, step-descending order.
        let emb_g = grads.mat_mut(self.emb_entry());
        for (wi, win) in windows.iter().enumerate() {
            for t in (0..s).rev() {
                let tok = win[t] as usize;
                ops::axpy(1.0, dx0.row(t * n + wi), emb_g.row_mut(tok));
            }
        }

        ws.give_usize(order);
        ws.give_matrix(prev_tmp);
        ws.give(dh_mat);
        ws.give_shell(dh_carry);
        ws.give_shell(dc_carry);
        ws.give_matrix(dx0);
        ws.give_shell(dz_all);
        fwd.release(ws);
        loss_sum * inv
    }

    fn evaluate_batched(
        &self,
        params: &ParamSet,
        batch: &Batch<'_>,
        k: usize,
        ws: &mut Workspace,
    ) -> EvalAccum {
        let windows = match batch {
            Batch::Seq { windows } => *windows,
            Batch::Dense { .. } => panic!("LstmLmModel expects Batch::Seq"),
        };
        if windows.is_empty() {
            return EvalAccum::default();
        }
        let Some(mut fwd) = BatchedForward::run(self, params, windows, ws) else {
            return self.evaluate(params, batch, k);
        };
        let (n, s) = (fwd.n, fwd.s);
        let _gemm_span = fedbiad_telemetry::span!("nn.batch.eval", n = n, steps = s);
        fedbiad_telemetry::gauge!("nn.ws_churn", ws.churn());
        // The reference folds loss window-major, step-ascending; stage
        // per-row losses and replay that order.
        let mut loss_buf = ws.take(s * n);
        let mut correct = 0u64;
        for t in 0..s {
            for (wi, win) in windows.iter().enumerate() {
                let row = &mut fwd.logits.row_mut(t * n + wi)[..];
                let target = win[t + 1] as usize;
                if stats::in_top_k(row, target, k) {
                    correct += 1;
                }
                loss_buf[t * n + wi] = softmax::softmax_xent_loss(row, target);
            }
        }
        let mut acc = EvalAccum {
            correct,
            count: (n * s) as u64,
            ..EvalAccum::default()
        };
        for wi in 0..n {
            for t in 0..s {
                acc.loss_sum += loss_buf[t * n + wi] as f64;
            }
        }
        ws.give(loss_buf);
        fwd.release(ws);
        acc
    }
}

/// Workspace-backed state of a batched LSTM forward pass: one matrix per
/// (layer, quantity), with step `t`'s rows in block `t` (state buffers
/// carry an extra leading zero block, so step `t` reads block `t` and
/// writes block `t+1`).
struct BatchedForward {
    /// Windows in the batch.
    n: usize,
    /// Uniform step count.
    s: usize,
    /// Layer-0 inputs: `s·n × embed` gathered embedding rows.
    emb_x: Matrix,
    /// Per layer: post-activation gates, `s·n × 4H`.
    gates: Vec<Matrix>,
    /// Per layer: `tanh(c)`, `s·n × H`.
    tanh_c: Vec<Matrix>,
    /// Per layer: hidden states, `(s+1)·n × H`.
    h_all: Vec<Matrix>,
    /// Per layer: cell states, `(s+1)·n × H`.
    c_all: Vec<Matrix>,
    /// Head outputs, `s·n × vocab` (raw logits; the backward turns them
    /// into deltas in place).
    logits: Matrix,
}

impl BatchedForward {
    /// Run the forward pass; `None` when the windows are ragged (the
    /// batched time loop needs one uniform step count).
    fn run(
        model: &LstmLmModel,
        params: &ParamSet,
        windows: &[&[u32]],
        ws: &mut Workspace,
    ) -> Option<BatchedForward> {
        let n = windows.len();
        let s = windows[0].len().checked_sub(1)?;
        if s == 0 || windows.iter().any(|w| w.len() != s + 1) {
            return None;
        }
        let (h, e, v) = (model.hidden, model.embed, model.vocab);
        let mut emb_x = ws.take_matrix(s * n, e);
        let emb = params.mat(model.emb_entry());
        for (wi, win) in windows.iter().enumerate() {
            for (t, &tok) in win[..s].iter().enumerate() {
                debug_assert!((tok as usize) < v, "token out of vocabulary");
                emb_x
                    .row_mut(t * n + wi)
                    .copy_from_slice(emb.row(tok as usize));
            }
        }
        let (mut gates, mut tanh_c) = (ws.take_shell(), ws.take_shell());
        let (mut h_all, mut c_all) = (ws.take_shell(), ws.take_shell());
        for _ in 0..model.layers {
            gates.push(ws.take_matrix(s * n, 4 * h));
            tanh_c.push(ws.take_matrix(s * n, h));
            h_all.push(ws.take_matrix((s + 1) * n, h));
            c_all.push(ws.take_matrix((s + 1) * n, h));
        }
        let mut logits = ws.take_matrix(s * n, v);
        let mut rec = ws.take(n * 4 * h);

        for t in 0..s {
            for l in 0..model.layers {
                let wx = params.mat(model.wx_entry(l));
                let bias = params.bias(model.wx_entry(l));
                let wh = params.mat(model.wh_entry(l));
                // Split h_all so layer l's state is writable while layer
                // l−1's output block stays readable.
                let (below, cur) = h_all.split_at_mut(l);
                let x_t = if l == 0 {
                    &emb_x.as_slice()[t * n * e..(t + 1) * n * e]
                } else {
                    &below[l - 1].as_slice()[(t + 1) * n * h..(t + 2) * n * h]
                };
                let gates_t = &mut gates[l].as_mut_slice()[t * n * 4 * h..(t + 1) * n * 4 * h];
                // Gate fusion across the batch: z = X·Wxᵀ + b + H_prev·Whᵀ,
                // each term in the reference's association order.
                ops::gemm_nt(x_t, wx, n, gates_t);
                ops::add_bias_cols(gates_t, bias);
                let hl = &mut cur[0];
                ops::gemm_nt(&hl.as_slice()[t * n * h..(t + 1) * n * h], wh, n, &mut rec);
                ops::axpy(1.0, &rec, gates_t);
                let (_, h_next_part) = hl.as_mut_slice().split_at_mut((t + 1) * n * h);
                let (c_prev_part, c_next_part) =
                    c_all[l].as_mut_slice().split_at_mut((t + 1) * n * h);
                lstm::cell_forward_block(
                    gates_t,
                    &c_prev_part[t * n * h..],
                    &mut c_next_part[..n * h],
                    &mut tanh_c[l].as_mut_slice()[t * n * h..(t + 1) * n * h],
                    &mut h_next_part[..n * h],
                    n,
                    h,
                );
            }
            let top = &h_all[model.layers - 1].as_slice()[(t + 1) * n * h..(t + 2) * n * h];
            let logits_t = &mut logits.as_mut_slice()[t * n * v..(t + 1) * n * v];
            ops::gemm_nt(top, params.mat(model.head_entry()), n, logits_t);
            ops::add_bias_cols(logits_t, params.bias(model.head_entry()));
        }
        ws.give(rec);
        Some(BatchedForward {
            n,
            s,
            emb_x,
            gates,
            tanh_c,
            h_all,
            c_all,
            logits,
        })
    }

    /// Return every buffer to the arena.
    fn release(self, ws: &mut Workspace) {
        ws.give_matrix(self.emb_x);
        ws.give_matrix(self.logits);
        ws.give_shell(self.gates);
        ws.give_shell(self.tanh_c);
        ws.give_shell(self.h_all);
        ws.give_shell(self.c_all);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_tensor::rng::{stream, StreamTag};

    fn toy() -> (LstmLmModel, ParamSet) {
        let m = LstmLmModel::new(5, 3, 4, 2);
        let mut rng = stream(21, StreamTag::Init, 0, 0);
        let p = m.init_params(&mut rng);
        (m, p)
    }

    #[test]
    fn entry_layout_and_arch_agree() {
        let (m, p) = toy();
        assert_eq!(p.num_entries(), 1 + 2 * 2 + 1);
        assert_eq!(p.total_params(), m.arch().total_weights);
        assert_eq!(p.meta(m.wh_entry(1)).kind, LayerKind::LstmRecurrent);
        // J = vocab + Σ(H wx-units + H wh-units) + vocab — gate-grouped:
        // one unit owns all 4 gate rows of a hidden unit.
        assert_eq!(p.num_row_units(), 5 + 4 + 4 + 4 + 4 + 5);
        // A wx unit carries 4 rows × (3 cols + bias) parameters.
        assert_eq!(p.row_unit_params(5), 4 * (3 + 1));
    }

    #[test]
    fn paper_models_match_table1_sizes() {
        let ptb = LstmLmModel::paper_ptb();
        let mb = ptb.arch().total_weights as f64 * 4.0 / (1024.0 * 1024.0);
        assert!(
            (mb - 29.8).abs() < 0.1,
            "PTB model should be 29.8 MB, got {mb:.2}"
        );
        let wt2 = LstmLmModel::paper_wikitext2();
        let mb = wt2.arch().total_weights as f64 * 4.0 / (1024.0 * 1024.0);
        assert!(
            (mb - 75.3).abs() < 0.1,
            "WikiText-2 model should be 75.3 MB, got {mb:.2}"
        );
    }

    #[test]
    fn loss_grad_matches_finite_difference() {
        let (m, p) = toy();
        let w1 = [0u32, 2, 4, 1, 3];
        let w2 = [1u32, 1, 0, 2, 2];
        let windows: Vec<&[u32]> = vec![&w1, &w2];
        let batch = Batch::Seq { windows: &windows };

        let mut grads = p.zeros_like();
        let _ = m.loss_grad(&p, &batch, &mut grads);

        let eps = 1e-2;
        // Spot checks across every entry kind: emb, wx0, wh0, wx1, wh1, head.
        let checks: Vec<(usize, usize, usize)> = vec![
            (m.emb_entry(), 2, 1),
            (m.wx_entry(0), 0, 0),
            (m.wx_entry(0), 7, 2),
            (m.wh_entry(0), 3, 3),
            (m.wx_entry(1), 10, 1),
            (m.wh_entry(1), 15, 0),
            (m.head_entry(), 4, 2),
        ];
        for (e, r, c) in checks {
            let mut pp = p.clone();
            let v = pp.mat(e).get(r, c);
            pp.mat_mut(e).set(r, c, v + eps);
            let mut pm = p.clone();
            pm.mat_mut(e).set(r, c, v - eps);
            let mut g = p.zeros_like();
            let fp = m.loss_grad(&pp, &batch, &mut g);
            g.zero();
            let fm = m.loss_grad(&pm, &batch, &mut g);
            let fd = (fp - fm) / (2.0 * eps);
            let got = grads.mat(e).get(r, c);
            assert!(
                (got - fd).abs() < 3e-2,
                "entry {e} [{r},{c}]: analytic {got} vs fd {fd}"
            );
        }
        // Bias checks (wx0 forget gate and head).
        for (e, r) in [(m.wx_entry(0), 5usize), (m.head_entry(), 3)] {
            let mut pp = p.clone();
            pp.bias_mut(e)[r] += eps;
            let mut pm = p.clone();
            pm.bias_mut(e)[r] -= eps;
            let mut g = p.zeros_like();
            let fp = m.loss_grad(&pp, &batch, &mut g);
            g.zero();
            let fm = m.loss_grad(&pm, &batch, &mut g);
            let fd = (fp - fm) / (2.0 * eps);
            let got = grads.bias(e)[r];
            assert!((got - fd).abs() < 3e-2, "bias {e}[{r}]: {got} vs {fd}");
        }
    }

    #[test]
    fn training_learns_a_deterministic_cycle() {
        // Tokens cycle 0→1→2→3→4→0…; an LSTM must learn it quickly.
        let (m, mut p) = toy();
        let stream_tokens: Vec<u32> = (0..40).map(|i| (i % 5) as u32).collect();
        let windows: Vec<&[u32]> = stream_tokens.chunks(8).collect();
        let batch = Batch::Seq { windows: &windows };
        let mut grads = p.zeros_like();
        let first = m.loss_grad(&p, &batch, &mut grads);
        for _ in 0..300 {
            grads.zero();
            let _ = m.loss_grad(&p, &batch, &mut grads);
            grads.clip_global_norm(5.0);
            p.axpy(-0.5, &grads);
        }
        grads.zero();
        let last = m.loss_grad(&p, &batch, &mut grads);
        assert!(last < first * 0.3, "no learning: {first} -> {last}");
        let acc = m.evaluate(&p, &batch, 1);
        assert!(acc.accuracy() > 0.9, "accuracy {}", acc.accuracy());
    }

    #[test]
    fn batched_engine_is_bit_identical_to_reference() {
        let (m, p) = toy();
        // 3 windows (odd, exercising the dot4 remainder), 2 layers, 6 steps.
        let w1 = [0u32, 2, 4, 1, 3, 0, 2];
        let w2 = [1u32, 1, 0, 2, 2, 4, 3];
        let w3 = [4u32, 0, 1, 1, 2, 3, 4];
        let windows: Vec<&[u32]> = vec![&w1, &w2, &w3];
        let batch = Batch::Seq { windows: &windows };

        let mut gr = p.zeros_like();
        let lr = m.loss_grad(&p, &batch, &mut gr);
        let mut ws = Workspace::new();
        let mut gb = p.zeros_like();
        let lb = m.loss_grad_batched(&p, &batch, &mut gb, &mut ws);
        assert_eq!(lr.to_bits(), lb.to_bits(), "loss: {lr} vs {lb}");
        for (e, (a, b)) in gr.flatten().iter().zip(gb.flatten().iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "grad[{e}]: {a} vs {b}");
        }

        let er = m.evaluate(&p, &batch, 3);
        let eb = m.evaluate_batched(&p, &batch, 3, &mut ws);
        assert_eq!(er.loss_sum.to_bits(), eb.loss_sum.to_bits());
        assert_eq!((er.correct, er.count), (eb.correct, eb.count));

        // Second call reuses the warm arena without allocating.
        let churn = ws.churn();
        gb.zero();
        let _ = m.loss_grad_batched(&p, &batch, &mut gb, &mut ws);
        let _ = m.evaluate_batched(&p, &batch, 3, &mut ws);
        assert_eq!(ws.churn(), churn, "steady-state arena must not allocate");
    }

    #[test]
    fn batched_engine_falls_back_on_ragged_windows() {
        let (m, p) = toy();
        let w1 = [0u32, 2, 4, 1];
        let w2 = [1u32, 1, 0];
        let windows: Vec<&[u32]> = vec![&w1, &w2];
        let batch = Batch::Seq { windows: &windows };
        let mut gr = p.zeros_like();
        let lr = m.loss_grad(&p, &batch, &mut gr);
        let mut ws = Workspace::new();
        let mut gb = p.zeros_like();
        let lb = m.loss_grad_batched(&p, &batch, &mut gb, &mut ws);
        assert_eq!(lr.to_bits(), lb.to_bits());
        assert_eq!(gr.flatten(), gb.flatten());
        let er = m.evaluate(&p, &batch, 2);
        let eb = m.evaluate_batched(&p, &batch, 2, &mut ws);
        assert_eq!(er.loss_sum.to_bits(), eb.loss_sum.to_bits());
    }

    #[test]
    fn evaluate_top3_at_least_top1() {
        let (m, p) = toy();
        let w = [0u32, 1, 2, 3, 4, 0, 1];
        let windows: Vec<&[u32]> = vec![&w];
        let batch = Batch::Seq { windows: &windows };
        let a1 = m.evaluate(&p, &batch, 1).accuracy();
        let a3 = m.evaluate(&p, &batch, 3).accuracy();
        assert!(a3 >= a1);
    }
}
