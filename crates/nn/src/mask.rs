//! Coverage masks: which parameters a client trained and uploads.
//!
//! Each federated-dropout method induces a different *shape* of coverage
//! over a weight matrix:
//!
//! * FedBIAD → [`CoverageMask::Rows`] (spike-and-slab row dropout, eq. (4));
//! * FedDrop / AFD neuron dropout → `Rows` on the unit's own matrix plus
//!   [`CoverageMask::RowsCols`] on the downstream matrix (dropping a neuron
//!   removes its outgoing columns too);
//! * FjORD / HeteroFL width shrinking → `RowsCols` (leading submatrix);
//! * FedMP magnitude pruning → [`CoverageMask::Elements`] (unstructured).
//!
//! The mask also owns the **exact uplink byte accounting** used by Table I:
//! 4 bytes per transmitted f32, 1 bit per dropping label for row patterns
//! (paper §V-B: "each dropping label is 1 bit"), 1 bit per element for
//! pruning bitmaps; biases travel with their bundled row.

use crate::params::ParamSet;
use serde::{Deserialize, Serialize};

/// Compact bit vector.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// All bits set to `value`.
    pub fn new(len: usize, value: bool) -> Self {
        let nwords = len.div_ceil(64);
        let fill = if value { u64::MAX } else { 0 };
        let mut bv = Self {
            words: vec![fill; nwords],
            len,
        };
        bv.clear_tail();
        bv
    }

    fn clear_tail(&mut self) {
        let extra = self.words.len() * 64 - self.len;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at `i`.
    #[inline(always)]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if v {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits strictly before `i` (rank query; `i` may equal
    /// `len`). The wire codec uses this to locate a covered element's
    /// position inside the kept-value stream.
    pub fn rank(&self, i: usize) -> usize {
        assert!(i <= self.len, "rank index out of range");
        let full = i / 64;
        let mut n: usize = self.words[..full]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        let rem = i % 64;
        if rem > 0 {
            n += (self.words[full] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        n
    }

    /// Export as a little-endian bitmap: byte `j` holds bits `8j..8j+8`,
    /// bit `i` at `bytes[i/8] >> (i%8)`. Exactly `⌈len/8⌉` bytes — the
    /// wire representation the paper's "1 bit per dropping label" accounting
    /// assumes.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let nbytes = self.len.div_ceil(8);
        let mut out = vec![0u8; nbytes];
        for (j, b) in out.iter_mut().enumerate() {
            let word = self.words[j / 8];
            *b = (word >> ((j % 8) * 8)) as u8;
        }
        // Mask the tail so padding bits are always zero on the wire.
        let extra = nbytes * 8 - self.len;
        if extra > 0 {
            if let Some(last) = out.last_mut() {
                *last &= 0xFF >> extra;
            }
        }
        out
    }

    /// Inverse of [`BitVec::to_le_bytes`] for a bitmap of `len` bits.
    /// Padding bits past `len` are ignored.
    pub fn from_le_bytes(bytes: &[u8], len: usize) -> Self {
        assert_eq!(bytes.len(), len.div_ceil(8), "bitmap length mismatch");
        let mut bv = Self::new(len, false);
        for (j, &b) in bytes.iter().enumerate() {
            bv.words[j / 8] |= (b as u64) << ((j % 8) * 8);
        }
        bv.clear_tail();
        bv
    }

    /// Indices of set bits, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }

    /// Wire size when transmitted as a raw bitmap: ⌈len/8⌉ bytes.
    pub fn wire_bytes(&self) -> u64 {
        (self.len as u64).div_ceil(8)
    }
}

/// Coverage of one weight matrix entry. Bits are **kept** (= transmitted)
/// indicators.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CoverageMask {
    /// Entire entry transmitted.
    Full,
    /// Row-granular: kept rows carry their weights and bundled bias.
    /// The bit-vector length equals the entry's row count.
    Rows(BitVec),
    /// Submatrix: kept rows × kept cols; bias follows rows.
    RowsCols { rows: BitVec, cols: BitVec },
    /// Element-granular over the weight matrix (row-major bit index
    /// `r*cols + c`); the bias, when present, is transmitted in full
    /// (it is negligible and unstructured pruning papers keep biases).
    Elements(BitVec),
}

impl CoverageMask {
    /// Is element `(r, c)` covered (trained & transmitted)?
    #[inline]
    pub fn covers(&self, r: usize, c: usize, cols: usize) -> bool {
        match self {
            CoverageMask::Full => true,
            CoverageMask::Rows(rows) => rows.get(r),
            CoverageMask::RowsCols { rows, cols: cm } => rows.get(r) && cm.get(c),
            CoverageMask::Elements(bits) => bits.get(r * cols + c),
        }
    }

    /// Is the bias element of row `r` covered?
    #[inline]
    pub fn covers_bias(&self, r: usize) -> bool {
        match self {
            CoverageMask::Full | CoverageMask::Elements(_) => true,
            CoverageMask::Rows(rows) => rows.get(r),
            CoverageMask::RowsCols { rows, .. } => rows.get(r),
        }
    }
}

/// Per-entry coverage for a whole model, aligned with [`ParamSet`] entries.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelMask {
    /// One mask per `ParamSet` entry.
    pub per_entry: Vec<CoverageMask>,
}

impl ModelMask {
    /// Full coverage of every entry (FedAvg).
    pub fn full(params: &ParamSet) -> Self {
        Self {
            per_entry: vec![CoverageMask::Full; params.num_entries()],
        }
    }

    /// Build from a global row-unit pattern β (length J, bit = kept):
    /// droppable entries get `Rows` masks (each unit bit expanded to its
    /// gate rows), non-droppable stay `Full`. This is FedBIAD's
    /// β → coverage translation.
    pub fn from_row_pattern(params: &ParamSet, beta: &BitVec) -> Self {
        assert_eq!(beta.len(), params.num_row_units(), "β length must be J");
        let mut per_entry = Vec::with_capacity(params.num_entries());
        for e in 0..params.num_entries() {
            if !params.meta(e).droppable {
                per_entry.push(CoverageMask::Full);
                continue;
            }
            let rows = params.mat(e).rows();
            let mut bv = BitVec::new(rows, false);
            for u in 0..params.entry_units(e) {
                let j = params.row_unit_index(e, u).expect("droppable");
                if beta.get(j) {
                    for r in params.unit_rows(e, u) {
                        bv.set(r, true);
                    }
                }
            }
            per_entry.push(CoverageMask::Rows(bv));
        }
        Self { per_entry }
    }

    /// Zero all *non-covered* parameters in place — turning U into β∘U
    /// (eq. (6)).
    // Index loops are deliberate: the bias vector is empty when the entry
    // has no bias, so iterating it instead of `0..rows` would skip the
    // matrix-row zeroing entirely.
    #[allow(clippy::needless_range_loop)]
    pub fn apply(&self, params: &mut ParamSet) {
        assert_eq!(self.per_entry.len(), params.num_entries());
        for (e, mask) in self.per_entry.iter().enumerate() {
            match mask {
                CoverageMask::Full => {}
                CoverageMask::Rows(rows) => {
                    let has_bias = params.meta(e).has_bias;
                    let (m, b) = params.mat_bias_mut(e);
                    for r in 0..m.rows() {
                        if !rows.get(r) {
                            m.zero_row(r);
                            if has_bias {
                                b[r] = 0.0;
                            }
                        }
                    }
                }
                CoverageMask::RowsCols { rows, cols } => {
                    let has_bias = params.meta(e).has_bias;
                    let (m, b) = params.mat_bias_mut(e);
                    for r in 0..m.rows() {
                        if !rows.get(r) {
                            m.zero_row(r);
                            if has_bias {
                                b[r] = 0.0;
                            }
                        } else {
                            let row = m.row_mut(r);
                            for (c, v) in row.iter_mut().enumerate() {
                                if !cols.get(c) {
                                    *v = 0.0;
                                }
                            }
                        }
                    }
                }
                CoverageMask::Elements(bits) => {
                    let m = params.mat_mut(e);
                    let cols = m.cols();
                    let buf = m.as_mut_slice();
                    for (i, v) in buf.iter_mut().enumerate() {
                        let _ = cols; // element index == flat index
                        if !bits.get(i) {
                            *v = 0.0;
                        }
                    }
                }
            }
        }
    }

    /// Number of transmitted scalars (weights + covered biases).
    pub fn kept_params(&self, params: &ParamSet) -> usize {
        let mut n = 0usize;
        for (e, mask) in self.per_entry.iter().enumerate() {
            let m = params.mat(e);
            let has_bias = params.meta(e).has_bias;
            match mask {
                CoverageMask::Full => {
                    n += m.len() + if has_bias { m.rows() } else { 0 };
                }
                CoverageMask::Rows(rows) => {
                    let kept = rows.count_ones();
                    n += kept * (m.cols() + usize::from(has_bias));
                }
                CoverageMask::RowsCols { rows, cols } => {
                    let kr = rows.count_ones();
                    let kc = cols.count_ones();
                    n += kr * kc + if has_bias { kr } else { 0 };
                }
                CoverageMask::Elements(bits) => {
                    n += bits.count_ones() + if has_bias { m.rows() } else { 0 };
                }
            }
        }
        n
    }

    /// Exact uplink bytes: 4 B per transmitted scalar + pattern overhead
    /// (1 bit per row label for `Rows`/`RowsCols`, 1 bit per element for
    /// `Elements`; `Full` has no overhead).
    pub fn wire_bytes(&self, params: &ParamSet) -> u64 {
        let mut bytes = self.kept_params(params) as u64 * 4;
        for mask in &self.per_entry {
            bytes += match mask {
                CoverageMask::Full => 0,
                CoverageMask::Rows(rows) => rows.wire_bytes(),
                CoverageMask::RowsCols { rows, cols } => rows.wire_bytes() + cols.wire_bytes(),
                CoverageMask::Elements(bits) => bits.wire_bytes(),
            };
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{EntryMeta, LayerKind};
    use fedbiad_tensor::Matrix;

    fn two_entry_params() -> ParamSet {
        let mut p = ParamSet::new();
        p.push_entry(
            Matrix::full(4, 3, 1.0),
            Some(vec![1.0; 4]),
            EntryMeta::new("w1", LayerKind::DenseHidden, true, true),
        );
        p.push_entry(
            Matrix::full(2, 4, 1.0),
            Some(vec![1.0; 2]),
            EntryMeta::new("w2", LayerKind::DenseOutput, true, true),
        );
        p
    }

    #[test]
    fn bitvec_basics() {
        let mut bv = BitVec::new(70, false);
        assert_eq!(bv.count_ones(), 0);
        bv.set(0, true);
        bv.set(69, true);
        assert!(bv.get(0) && bv.get(69) && !bv.get(35));
        assert_eq!(bv.count_ones(), 2);
        assert_eq!(bv.ones().collect::<Vec<_>>(), vec![0, 69]);
        assert_eq!(bv.wire_bytes(), 9);
        let all = BitVec::new(70, true);
        assert_eq!(all.count_ones(), 70);
    }

    #[test]
    fn rank_counts_strictly_before() {
        let mut bv = BitVec::new(130, false);
        for i in [0, 3, 63, 64, 127, 129] {
            bv.set(i, true);
        }
        assert_eq!(bv.rank(0), 0);
        assert_eq!(bv.rank(1), 1);
        assert_eq!(bv.rank(64), 3);
        assert_eq!(bv.rank(65), 4);
        assert_eq!(bv.rank(130), 6);
        for i in 0..=bv.len() {
            let naive = (0..i).filter(|&j| bv.get(j)).count();
            assert_eq!(bv.rank(i), naive, "rank({i})");
        }
    }

    #[test]
    fn le_bytes_round_trip_and_tail_padding() {
        let mut bv = BitVec::new(13, false);
        for i in [0, 5, 8, 12] {
            bv.set(i, true);
        }
        let bytes = bv.to_le_bytes();
        assert_eq!(bytes.len(), 2);
        assert_eq!(bytes[0], 0b0010_0001);
        assert_eq!(bytes[1], 0b0001_0001);
        assert_eq!(BitVec::from_le_bytes(&bytes, 13), bv);
        // Padding bits in the source are ignored on decode.
        let dirty = [bytes[0], bytes[1] | 0b1110_0000];
        assert_eq!(BitVec::from_le_bytes(&dirty, 13), bv);
        // A 70-bit vector crosses the word boundary.
        let all = BitVec::new(70, true);
        assert_eq!(BitVec::from_le_bytes(&all.to_le_bytes(), 70), all);
    }

    #[test]
    fn from_row_pattern_splits_beta_per_entry() {
        let p = two_entry_params();
        assert_eq!(p.num_row_units(), 6);
        let mut beta = BitVec::new(6, true);
        beta.set(1, false); // w1 row 1
        beta.set(4, false); // w2 row 0
        let mask = ModelMask::from_row_pattern(&p, &beta);
        match &mask.per_entry[0] {
            CoverageMask::Rows(r) => {
                assert!(r.get(0) && !r.get(1) && r.get(2) && r.get(3))
            }
            other => panic!("want Rows, got {other:?}"),
        }
        match &mask.per_entry[1] {
            CoverageMask::Rows(r) => assert!(!r.get(0) && r.get(1)),
            other => panic!("want Rows, got {other:?}"),
        }
    }

    #[test]
    fn apply_zeroes_dropped_rows_and_biases() {
        let p0 = two_entry_params();
        let mut beta = BitVec::new(6, true);
        beta.set(2, false);
        let mask = ModelMask::from_row_pattern(&p0, &beta);
        let mut p = p0.clone();
        mask.apply(&mut p);
        assert_eq!(p.mat(0).row(2), &[0.0, 0.0, 0.0]);
        assert_eq!(p.bias(0)[2], 0.0);
        assert_eq!(p.mat(0).row(0), &[1.0, 1.0, 1.0]);
        assert_eq!(p.mat(1).row(0), &[1.0; 4]);
    }

    #[test]
    fn kept_params_and_wire_bytes_row_mask() {
        let p = two_entry_params();
        // Drop one row of w1 (3 weights + 1 bias).
        let mut beta = BitVec::new(6, true);
        beta.set(0, false);
        let mask = ModelMask::from_row_pattern(&p, &beta);
        let total = p.total_params();
        assert_eq!(mask.kept_params(&p), total - 4);
        // bytes = kept*4 + ceil(4/8) + ceil(2/8)
        assert_eq!(mask.wire_bytes(&p), (total as u64 - 4) * 4 + 1 + 1);
    }

    #[test]
    fn full_mask_matches_paramset_bytes() {
        let p = two_entry_params();
        let mask = ModelMask::full(&p);
        assert_eq!(mask.wire_bytes(&p), p.total_bytes());
    }

    #[test]
    fn rows_cols_submatrix_accounting() {
        let p = two_entry_params();
        let mut rows = BitVec::new(4, true);
        rows.set(3, false);
        let mut cols = BitVec::new(3, true);
        cols.set(0, false);
        let mask = ModelMask {
            per_entry: vec![CoverageMask::RowsCols { rows, cols }, CoverageMask::Full],
        };
        // entry0: 3 rows × 2 cols + 3 biases = 9; entry1 full = 8+2.
        assert_eq!(mask.kept_params(&p), 9 + 10);
        let mut q = p.clone();
        mask.apply(&mut q);
        assert_eq!(q.mat(0).get(0, 0), 0.0);
        assert_eq!(q.mat(0).get(0, 1), 1.0);
        assert_eq!(q.mat(0).row(3), &[0.0, 0.0, 0.0]);
        assert_eq!(q.bias(0)[3], 0.0);
    }

    #[test]
    fn elements_mask_keeps_bias_full() {
        let p = two_entry_params();
        let mut bits = BitVec::new(12, false);
        bits.set(5, true);
        let mask = ModelMask {
            per_entry: vec![CoverageMask::Elements(bits), CoverageMask::Full],
        };
        // entry0: 1 weight + 4 biases; entry1: 10.
        assert_eq!(mask.kept_params(&p), 5 + 10);
        let mut q = p.clone();
        mask.apply(&mut q);
        assert_eq!(q.mat(0).get(1, 2), 1.0); // flat index 5 kept
        assert_eq!(q.mat(0).get(0, 0), 0.0);
        assert_eq!(q.bias(0), &[1.0; 4]); // bias untouched
    }

    #[test]
    fn covers_agrees_with_apply() {
        let p = two_entry_params();
        let mut beta = BitVec::new(6, true);
        beta.set(1, false);
        beta.set(5, false);
        let mask = ModelMask::from_row_pattern(&p, &beta);
        let mut q = p.clone();
        mask.apply(&mut q);
        for e in 0..p.num_entries() {
            let m = q.mat(e);
            for r in 0..m.rows() {
                for c in 0..m.cols() {
                    let covered = mask.per_entry[e].covers(r, c, m.cols());
                    assert_eq!(m.get(r, c) != 0.0, covered, "entry {e} ({r},{c})");
                }
            }
        }
    }
}
