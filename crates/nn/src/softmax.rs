//! Fused softmax + cross-entropy.

/// Numerically stable in-place softmax.
pub fn softmax(xs: &mut [f32]) {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    let inv = 1.0 / sum;
    for x in xs.iter_mut() {
        *x *= inv;
    }
}

/// Fused forward+backward for softmax cross-entropy.
///
/// On entry `logits` holds raw scores; on exit it holds the gradient
/// `∂L/∂logits = softmax(logits) − one_hot(target)`. Returns the loss
/// `−ln p[target]`.
pub fn softmax_xent_grad(logits: &mut [f32], target: usize) -> f32 {
    debug_assert!(target < logits.len());
    softmax(logits);
    // Guard the log: with float32 underflow p can be exactly 0.
    let p = logits[target].max(1e-12);
    let loss = -p.ln();
    logits[target] -= 1.0;
    loss
}

/// Forward-only loss (evaluation path): `−ln softmax(logits)[target]`
/// without mutating the caller's buffer beyond the softmax itself.
pub fn softmax_xent_loss(logits: &mut [f32], target: usize) -> f32 {
    softmax(logits);
    -logits[target].max(1e-12).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut xs = vec![1.0, 2.0, 3.0];
        softmax(&mut xs);
        let s: f32 = xs.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = vec![1000.0, 1001.0];
        softmax(&mut a);
        let mut b = vec![0.0, 1.0];
        softmax(&mut b);
        assert!((a[0] - b[0]).abs() < 1e-6);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn xent_grad_matches_finite_difference() {
        let logits = [0.3f32, -0.7, 1.1, 0.2];
        let target = 2;
        let mut g = logits.to_vec();
        let loss = softmax_xent_grad(&mut g, target);
        assert!(loss > 0.0);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.to_vec();
            lp[i] += eps;
            let mut lm = logits.to_vec();
            lm[i] -= eps;
            let fp = softmax_xent_loss(&mut lp, target);
            let fm = softmax_xent_loss(&mut lm, target);
            let fd = (fp - fm) / (2.0 * eps);
            assert!((g[i] - fd).abs() < 1e-3, "dim {i}: {} vs {}", g[i], fd);
        }
    }

    #[test]
    fn xent_gradient_sums_to_zero() {
        let mut g = vec![0.5, 0.1, -0.3];
        let _ = softmax_xent_grad(&mut g, 0);
        let s: f32 = g.iter().sum();
        assert!(s.abs() < 1e-6);
    }
}
