//! # fedbiad-nn
//!
//! From-scratch neural-network substrate for the FedBIAD reproduction.
//!
//! The paper (§III-A) works with two model families — a one-hidden-layer MLP
//! for image classification and an embedding + 2-layer LSTM + FC head for
//! next-word prediction — and treats *rows of weight matrices* as the unit
//! of dropout. This crate therefore provides:
//!
//! * [`params::ParamSet`]: the flat, architecture-agnostic parameter
//!   container that the FL server aggregates, with a **row-unit registry**
//!   (`j ∈ {1..J}`, paper notation) mapping global droppable-row indices to
//!   `(matrix, row)` pairs, each row bundling its bias element;
//! * [`mask`]: coverage masks (full / rows / submatrix / elements) that
//!   describe which parameters a client trained and uploads, plus exact
//!   wire-byte accounting (4 B weights, 1 bit per dropping label, 1 bit per
//!   element for pruning bitmaps);
//! * [`mlp::MlpModel`] and [`lstm_lm::LstmLmModel`]: hand-written
//!   forward/backward (BPTT for the LSTM) implementations of the paper's
//!   two architectures;
//! * [`optimizer::Sgd`]: SGD with optional gradient-norm clipping (used for
//!   the LSTM, §V-A) and weight decay (the KL(π̃‖π) ≈ L2 term of loss (2)).

pub mod activation;
pub mod cnn;
pub mod conv;
pub mod dense;
pub mod lstm;
pub mod lstm_lm;
pub mod mask;
pub mod mlp;
pub mod model;
pub mod optimizer;
pub mod params;
pub mod softmax;

pub use mask::{CoverageMask, ModelMask};
pub use model::{Batch, EvalAccum, Model, ReferencePath};
pub use params::{ArchInfo, LayerKind, ParamSet};
