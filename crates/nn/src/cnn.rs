//! A small CNN classifier with **filter-wise droppable units** — the
//! paper's §IV-C CNN extension of FedBIAD ("for each convolutional layer
//! in CNN, if the j-th filter has the dropping label β = 0, all weights in
//! this filter are zeroed out").
//!
//! Architecture: `conv(k×k, F filters) → ReLU → maxpool2 → FC hidden →
//! ReLU → FC classes`. Conv filters are rows of the first entry, so the
//! ParamSet row-unit registry gives filter-wise dropout for free.

use crate::activation::Activation;
use crate::conv::{
    conv2d_backward, conv2d_backward_patches, conv2d_forward, conv2d_forward_patches,
    maxpool2_backward, maxpool2_forward, ConvShape,
};
use crate::dense;
use crate::model::{Batch, EvalAccum, Model};
use crate::params::{ArchInfo, EntryMeta, LayerKind, ParamSet};
use crate::softmax;
use fedbiad_tensor::{init, ops, stats, Matrix, Workspace};
use rand::rngs::StdRng;

/// Conv + pool + 2-layer MLP head.
#[derive(Clone, Debug)]
pub struct CnnModel {
    /// Input side length (images are side×side, single channel).
    pub side: usize,
    /// Conv filters F.
    pub filters: usize,
    /// Kernel size k.
    pub kernel: usize,
    /// FC hidden width.
    pub hidden: usize,
    /// Classes.
    pub classes: usize,
}

impl CnnModel {
    /// Convenience constructor.
    pub fn new(side: usize, filters: usize, kernel: usize, hidden: usize, classes: usize) -> Self {
        assert!(side > kernel, "kernel must fit");
        Self {
            side,
            filters,
            kernel,
            hidden,
            classes,
        }
    }

    fn in_shape(&self) -> ConvShape {
        ConvShape {
            in_ch: 1,
            h: self.side,
            w: self.side,
        }
    }

    fn conv_shape(&self) -> ConvShape {
        self.in_shape().conv_out(self.filters, self.kernel)
    }

    fn pool_shape(&self) -> ConvShape {
        self.conv_shape().pool2_out()
    }

    /// Flattened feature length entering the FC head.
    pub fn flat_len(&self) -> usize {
        self.pool_shape().len()
    }
}

struct FwdBuffers {
    conv: Vec<f32>,
    pooled: Vec<f32>,
    argmax: Vec<usize>,
    hidden: Vec<f32>,
    logits: Vec<f32>,
}

impl CnnModel {
    fn buffers(&self) -> FwdBuffers {
        FwdBuffers {
            conv: vec![0.0; self.conv_shape().len()],
            pooled: vec![0.0; self.flat_len()],
            argmax: vec![0; self.flat_len()],
            hidden: vec![0.0; self.hidden],
            logits: vec![0.0; self.classes],
        }
    }

    fn forward(&self, params: &ParamSet, x: &[f32], b: &mut FwdBuffers) {
        conv2d_forward(
            params.mat(0),
            params.bias(0),
            x,
            self.in_shape(),
            self.kernel,
            &mut b.conv,
        );
        Activation::Relu.forward(&mut b.conv);
        maxpool2_forward(&b.conv, self.conv_shape(), &mut b.pooled, &mut b.argmax);
        dense::forward(
            params.mat(1),
            params.bias(1),
            &b.pooled,
            Activation::Relu,
            &mut b.hidden,
        );
        dense::forward(
            params.mat(2),
            params.bias(2),
            &b.hidden,
            Activation::Linear,
            &mut b.logits,
        );
    }
}

impl Model for CnnModel {
    fn name(&self) -> &str {
        "cnn"
    }

    fn arch(&self) -> ArchInfo {
        let conv_w = self.filters * self.kernel * self.kernel + self.filters;
        let fc1 = self.hidden * self.flat_len() + self.hidden;
        let fc2 = self.classes * self.hidden + self.classes;
        ArchInfo {
            total_weights: conv_w + fc1 + fc2,
            depth: 3,
            width: self.hidden.max(self.filters),
            input_dim: self.side * self.side,
        }
    }

    fn init_params(&self, rng: &mut StdRng) -> ParamSet {
        let mut p = ParamSet::new();
        let kk = self.kernel * self.kernel;
        let mut conv = Matrix::zeros(self.filters, kk);
        init::xavier(&mut conv, kk, self.filters, rng);
        p.push_entry(
            conv,
            Some(vec![0.0; self.filters]),
            // Filter-wise droppable: one row unit per filter (§IV-C).
            EntryMeta::new("conv1", LayerKind::DenseHidden, true, true),
        );
        let mut fc1 = Matrix::zeros(self.hidden, self.flat_len());
        init::xavier(&mut fc1, self.flat_len(), self.hidden, rng);
        p.push_entry(
            fc1,
            Some(vec![0.0; self.hidden]),
            EntryMeta::new("fc1", LayerKind::DenseHidden, true, true),
        );
        let mut fc2 = Matrix::zeros(self.classes, self.hidden);
        init::xavier(&mut fc2, self.hidden, self.classes, rng);
        p.push_entry(
            fc2,
            Some(vec![0.0; self.classes]),
            EntryMeta::new("fc2", LayerKind::DenseOutput, true, true),
        );
        p
    }

    fn loss_grad(&self, params: &ParamSet, batch: &Batch<'_>, grads: &mut ParamSet) -> f32 {
        let (x, y, dim) = match batch {
            Batch::Dense { x, y, dim } => (*x, *y, *dim),
            Batch::Seq { .. } => panic!("CnnModel expects Batch::Dense"),
        };
        assert_eq!(dim, self.side * self.side, "input must be side²");
        let n = y.len();
        assert!(n > 0);
        let inv_n = 1.0 / n as f32;
        let mut b = self.buffers();
        let mut dh = vec![0.0f32; self.hidden];
        let mut dpool = vec![0.0f32; self.flat_len()];
        let mut dconv = vec![0.0f32; self.conv_shape().len()];
        let mut loss_sum = 0.0f32;

        for (s, &label) in y.iter().enumerate() {
            let xs = &x[s * dim..(s + 1) * dim];
            self.forward(params, xs, &mut b);
            loss_sum += softmax::softmax_xent_grad(&mut b.logits, label as usize);
            for g in b.logits.iter_mut() {
                *g *= inv_n;
            }
            {
                let (w2g, b2g) = grads.mat_bias_mut(2);
                ops::ger(w2g, 1.0, &b.logits, &b.hidden);
                ops::axpy(1.0, &b.logits, b2g);
            }
            ops::gemv_t(params.mat(2), &b.logits, &mut dh);
            {
                let (w1g, b1g) = grads.mat_bias_mut(1);
                dense::backward(
                    params.mat(1),
                    &b.pooled,
                    &b.hidden,
                    Activation::Relu,
                    &mut dh,
                    w1g,
                    b1g,
                    Some(&mut dpool),
                );
            }
            maxpool2_backward(&dpool, &b.argmax, &mut dconv);
            // ReLU derivative from conv outputs.
            Activation::Relu.backward_from_output(&b.conv, &mut dconv);
            let (cg, cbg) = grads.mat_bias_mut(0);
            conv2d_backward(
                params.mat(0),
                xs,
                self.in_shape(),
                self.kernel,
                &dconv,
                cg,
                cbg,
                None,
            );
        }
        loss_sum * inv_n
    }

    fn evaluate(&self, params: &ParamSet, batch: &Batch<'_>, k: usize) -> EvalAccum {
        let (x, y, dim) = match batch {
            Batch::Dense { x, y, dim } => (*x, *y, *dim),
            Batch::Seq { .. } => panic!("CnnModel expects Batch::Dense"),
        };
        let mut b = self.buffers();
        let mut acc = EvalAccum::default();
        for (s, &label) in y.iter().enumerate() {
            let xs = &x[s * dim..(s + 1) * dim];
            self.forward(params, xs, &mut b);
            if stats::in_top_k(&b.logits, label as usize, k) {
                acc.correct += 1;
            }
            acc.loss_sum += softmax::softmax_xent_loss(&mut b.logits, label as usize) as f64;
            acc.count += 1;
        }
        acc
    }

    fn loss_grad_batched(
        &self,
        params: &ParamSet,
        batch: &Batch<'_>,
        grads: &mut ParamSet,
        ws: &mut Workspace,
    ) -> f32 {
        let (x, y, dim) = match batch {
            Batch::Dense { x, y, dim } => (*x, *y, *dim),
            Batch::Seq { .. } => panic!("CnnModel expects Batch::Dense"),
        };
        assert_eq!(dim, self.side * self.side, "input must be side²");
        let n = y.len();
        assert!(n > 0);
        let _gemm_span = fedbiad_telemetry::span!("nn.batch.loss_grad", n = n);
        fedbiad_telemetry::gauge!("nn.ws_churn", ws.churn());
        let inv_n = 1.0 / n as f32;
        let mut fwd = self.forward_batched(params, x, n, ws);

        let mut loss_sum = 0.0f32;
        for (s, &label) in y.iter().enumerate() {
            let row = &mut fwd.logits[s * self.classes..(s + 1) * self.classes];
            loss_sum += softmax::softmax_xent_grad(row, label as usize);
            for g in row.iter_mut() {
                *g *= inv_n;
            }
        }

        {
            let (w2g, b2g) = grads.mat_bias_mut(2);
            ops::gemm_tn_acc(&fwd.logits, &fwd.hidden, n, w2g);
            ops::add_row_sums(&fwd.logits, n, b2g);
        }
        let mut dh = ws.take(n * self.hidden);
        ops::gemm_nn(&fwd.logits, params.mat(2), n, &mut dh);
        let flat = self.flat_len();
        let mut dpool = ws.take(n * flat);
        {
            let (w1g, b1g) = grads.mat_bias_mut(1);
            dense::backward_batch(
                params.mat(1),
                &fwd.pooled,
                &fwd.hidden,
                n,
                Activation::Relu,
                &mut dh,
                w1g,
                b1g,
                Some(&mut dpool),
            );
        }
        // Conv backward per sample (im2col GEMM), sample-ascending like
        // the reference.
        let conv_len = self.conv_shape().len();
        let mut dconv = ws.take(conv_len);
        let (cg, cbg) = grads.mat_bias_mut(0);
        for s in 0..n {
            maxpool2_backward(
                &dpool[s * flat..(s + 1) * flat],
                &fwd.argmax[s * flat..(s + 1) * flat],
                &mut dconv,
            );
            Activation::Relu
                .backward_from_output(&fwd.conv[s * conv_len..(s + 1) * conv_len], &mut dconv);
            ops::im2col(
                &x[s * dim..(s + 1) * dim],
                1,
                self.side,
                self.side,
                self.kernel,
                &mut fwd.patches,
            );
            conv2d_backward_patches(params.mat(0), &fwd.patches, &dconv, cg, cbg, None);
        }

        ws.give(dconv);
        ws.give(dpool);
        ws.give(dh);
        fwd.release(ws);
        loss_sum * inv_n
    }

    fn evaluate_batched(
        &self,
        params: &ParamSet,
        batch: &Batch<'_>,
        k: usize,
        ws: &mut Workspace,
    ) -> EvalAccum {
        let (x, y, dim) = match batch {
            Batch::Dense { x, y, dim } => (*x, *y, *dim),
            Batch::Seq { .. } => panic!("CnnModel expects Batch::Dense"),
        };
        assert_eq!(dim, self.side * self.side, "input must be side²");
        let n = y.len();
        let _gemm_span = fedbiad_telemetry::span!("nn.batch.eval", n = n);
        fedbiad_telemetry::gauge!("nn.ws_churn", ws.churn());
        let mut fwd = self.forward_batched(params, x, n, ws);
        let mut acc = EvalAccum::default();
        for (s, &label) in y.iter().enumerate() {
            let row = &mut fwd.logits[s * self.classes..(s + 1) * self.classes];
            if stats::in_top_k(row, label as usize, k) {
                acc.correct += 1;
            }
            acc.loss_sum += softmax::softmax_xent_loss(row, label as usize) as f64;
            acc.count += 1;
        }
        fwd.release(ws);
        acc
    }
}

/// Workspace-backed buffers of a batched CNN forward pass (`n` samples
/// stacked row-major; `patches` is the per-sample im2col scratch).
struct CnnBatchedForward {
    conv: Vec<f32>,
    pooled: Vec<f32>,
    argmax: Vec<usize>,
    hidden: Vec<f32>,
    logits: Vec<f32>,
    patches: Vec<f32>,
}

impl CnnBatchedForward {
    fn release(self, ws: &mut Workspace) {
        ws.give(self.conv);
        ws.give(self.pooled);
        ws.give_usize(self.argmax);
        ws.give(self.hidden);
        ws.give(self.logits);
        ws.give(self.patches);
    }
}

impl CnnModel {
    /// Batched forward: conv per sample via im2col patches, FC head as
    /// whole-batch GEMMs. Bit-identical per sample to `forward`.
    fn forward_batched(
        &self,
        params: &ParamSet,
        x: &[f32],
        n: usize,
        ws: &mut Workspace,
    ) -> CnnBatchedForward {
        let dim = self.side * self.side;
        let conv_shape = self.conv_shape();
        let conv_len = conv_shape.len();
        let flat = self.flat_len();
        let mut fwd = CnnBatchedForward {
            conv: ws.take(n * conv_len),
            pooled: ws.take(n * flat),
            argmax: ws.take_usize(n * flat),
            hidden: ws.take(n * self.hidden),
            logits: ws.take(n * self.classes),
            patches: ws.take(conv_shape.h * conv_shape.w * self.kernel * self.kernel),
        };
        for s in 0..n {
            ops::im2col(
                &x[s * dim..(s + 1) * dim],
                1,
                self.side,
                self.side,
                self.kernel,
                &mut fwd.patches,
            );
            let conv_s = &mut fwd.conv[s * conv_len..(s + 1) * conv_len];
            conv2d_forward_patches(params.mat(0), params.bias(0), &fwd.patches, conv_s);
            Activation::Relu.forward(conv_s);
            maxpool2_forward(
                conv_s,
                conv_shape,
                &mut fwd.pooled[s * flat..(s + 1) * flat],
                &mut fwd.argmax[s * flat..(s + 1) * flat],
            );
        }
        dense::forward_batch(
            params.mat(1),
            params.bias(1),
            &fwd.pooled,
            n,
            Activation::Relu,
            &mut fwd.hidden,
        );
        dense::forward_batch(
            params.mat(2),
            params.bias(2),
            &fwd.hidden,
            n,
            Activation::Linear,
            &mut fwd.logits,
        );
        fwd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_tensor::rng::{stream, StreamTag};

    fn toy() -> (CnnModel, ParamSet) {
        let m = CnnModel::new(8, 4, 3, 10, 3);
        let p = m.init_params(&mut stream(33, StreamTag::Init, 0, 0));
        (m, p)
    }

    #[test]
    fn shapes_and_row_units() {
        let (m, p) = toy();
        // conv out: 6×6×4 → pool 3×3×4 = 36 features.
        assert_eq!(m.flat_len(), 36);
        assert_eq!(p.total_params(), m.arch().total_weights);
        // Row units: 4 filters + 10 hidden + 3 classes.
        assert_eq!(p.num_row_units(), 4 + 10 + 3);
    }

    #[test]
    fn loss_grad_matches_finite_difference() {
        let (m, p) = toy();
        let dim = 64;
        let x: Vec<f32> = (0..2 * dim).map(|i| ((i * 13) % 7) as f32 * 0.1).collect();
        let y = vec![1u32, 2u32];
        let batch = Batch::Dense { x: &x, y: &y, dim };
        let mut grads = p.zeros_like();
        let _ = m.loss_grad(&p, &batch, &mut grads);

        let eps = 1e-2;
        for (e, r, c) in [(0usize, 0usize, 0usize), (0, 3, 8), (1, 5, 20), (2, 1, 4)] {
            let mut pp = p.clone();
            let v = pp.mat(e).get(r, c);
            pp.mat_mut(e).set(r, c, v + eps);
            let mut pm = p.clone();
            pm.mat_mut(e).set(r, c, v - eps);
            let mut g = p.zeros_like();
            let fp = m.loss_grad(&pp, &batch, &mut g);
            g.zero();
            let fm = m.loss_grad(&pm, &batch, &mut g);
            let fd = (fp - fm) / (2.0 * eps);
            let got = grads.mat(e).get(r, c);
            assert!(
                (got - fd).abs() < 3e-2,
                "entry {e} [{r},{c}]: {got} vs {fd}"
            );
        }
    }

    #[test]
    fn batched_engine_is_bit_identical_to_reference() {
        let (m, p) = toy();
        let dim = 64;
        let n = 5;
        let x: Vec<f32> = (0..n * dim)
            .map(|i| ((i * 17) % 11) as f32 * 0.14 - 0.6)
            .collect();
        let y: Vec<u32> = (0..n as u32).map(|i| i % 3).collect();
        let batch = Batch::Dense { x: &x, y: &y, dim };
        let mut gr = p.zeros_like();
        let lr = m.loss_grad(&p, &batch, &mut gr);
        let mut ws = Workspace::new();
        let mut gb = p.zeros_like();
        let lb = m.loss_grad_batched(&p, &batch, &mut gb, &mut ws);
        assert_eq!(lr.to_bits(), lb.to_bits(), "loss: {lr} vs {lb}");
        for (i, (a, b)) in gr.flatten().iter().zip(gb.flatten().iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "grad[{i}]: {a} vs {b}");
        }
        let er = m.evaluate(&p, &batch, 2);
        let eb = m.evaluate_batched(&p, &batch, 2, &mut ws);
        assert_eq!(er.loss_sum.to_bits(), eb.loss_sum.to_bits());
        assert_eq!((er.correct, er.count), (eb.correct, eb.count));
    }

    #[test]
    fn cnn_learns_oriented_patterns() {
        // Two classes: vertical vs horizontal bars — convolution filters
        // should separate these quickly.
        let (m, mut p) = toy();
        let m = CnnModel { classes: 2, ..m };
        let mut p2 = m.init_params(&mut stream(34, StreamTag::Init, 0, 0));
        std::mem::swap(&mut p, &mut p2);
        let dim = 64;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..24 {
            let mut img = vec![0.0f32; dim];
            if i % 2 == 0 {
                let col = 1 + (i / 2) % 6;
                for r in 0..8 {
                    img[r * 8 + col] = 1.0;
                }
                y.push(0u32);
            } else {
                let row = 1 + (i / 2) % 6;
                for c in 0..8 {
                    img[row * 8 + c] = 1.0;
                }
                y.push(1u32);
            }
            x.extend(img);
        }
        let batch = Batch::Dense { x: &x, y: &y, dim };
        let mut grads = p.zeros_like();
        for _ in 0..150 {
            grads.zero();
            let _ = m.loss_grad(&p, &batch, &mut grads);
            p.axpy(-0.3, &grads);
        }
        let acc = m.evaluate(&p, &batch, 1);
        assert!(
            acc.accuracy() > 0.9,
            "CNN should separate bars, acc {}",
            acc.accuracy()
        );
    }

    #[test]
    fn filter_dropout_works_through_row_units() {
        let (m, mut p) = toy();
        // Drop filter 2 via the row-unit registry.
        p.zero_row_unit(2);
        assert!(p.mat(0).row(2).iter().all(|&v| v == 0.0));
        assert_eq!(p.bias(0)[2], 0.0);
        // Forward still works; the dropped filter's plane is zero after
        // ReLU so downstream features see nothing from it.
        let x = vec![0.5f32; 64];
        let yv = vec![0u32];
        let batch = Batch::Dense {
            x: &x,
            y: &yv,
            dim: 64,
        };
        let acc = m.evaluate(&p, &batch, 1);
        assert!(acc.loss_sum.is_finite());
    }
}
