//! FedBIAD (paper Algorithm 1): federated learning with Bayesian
//! inference-based adaptive dropout.
//!
//! Per round, each selected client:
//!
//! 1. initialises U^{k,0}_r from the received global U_{r−1} and, in stage
//!    one (r ≤ R_b), samples a dropping pattern β uniformly from Z_S^N; in
//!    stage two the pattern comes from the weight score vector E^k;
//! 2. iterates V masked-SGD steps on θ^{k,v} ~ β∘N(U, s̃²I) (eq. (7)),
//!    watching the loss trend ΔL (eq. (8)) every τ iterations and
//!    re-sampling β when the trend is unfavourable (stage one only);
//! 3. records dropout experience into E^k (eq. (9));
//! 4. uploads the non-dropped rows of U plus the 1-bit/row pattern
//!    (optionally DGC-compressed, Fig. 5).
//!
//! The server reconstructs β∘U per client and averages per eq. (10).

use crate::combo;
use crate::indicator::WeightScores;
use crate::losstrend::LossTrend;
use crate::pattern::{keep_count, DropPattern};
use crate::spike_slab::{client_total_data, resolve_noise, sample_theta, NoiseLevel};
use fedbiad_compress::{ClientState as SketchState, Compressor};
use fedbiad_data::ClientData;
use fedbiad_fl::aggregate::{aggregate_weights, ZeroMode};
use fedbiad_fl::algorithm::{FlAlgorithm, LocalResult, RoundInfo, TrainConfig};
use fedbiad_fl::client::{run_local_training, LocalHooks, LocalRunId};
use fedbiad_fl::upload::Upload;
use fedbiad_nn::{Model, ParamSet};
use fedbiad_tensor::rng::{stream, StreamTag};
use rand::rngs::StdRng;
use std::sync::Arc;

/// How stage-one patterns are sampled (DESIGN.md §4.1 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PatternSampling {
    /// Uniform over Z_S^N: exactly S rows kept globally (the literal
    /// paper formulation; default).
    Global,
    /// Per-matrix quota: each droppable matrix keeps ⌈(1−p)·rows⌉ rows.
    PerEntry,
}

/// FedBIAD hyper-parameters.
#[derive(Clone, Debug)]
pub struct FedBiadConfig {
    /// Dropout rate p (paper §V-A: 0.2 for MNIST-scale, 0.5 for large).
    pub dropout_rate: f32,
    /// Loss-trend interval τ (paper: 3).
    pub tau: usize,
    /// Stage boundary R_b in 1-based rounds (paper: 55 of 60).
    pub stage_boundary: usize,
    /// Stage-one pattern sampling.
    pub sampling: PatternSampling,
    /// Aggregation zero semantics (paper eq. (10) = `ZerosPull`).
    pub aggregation: ZeroMode,
    /// Posterior noise level (paper: eq. (13), = `Theory`).
    pub noise: NoiseLevel,
    /// Assumption-2 weight bound B.
    pub weight_bound: f64,
    /// Force-keep rows of *small* output heads (≤ this many rows). A
    /// 10-class head loses whole classes under uniform Z_S^N sampling,
    /// which the importance indicator only repairs in stage two; with a
    /// 10k-word head the quantile naturally drops rare words instead.
    /// Default 64 (classification heads protected, vocabulary heads
    /// droppable). Set 0 for the literal Z_S^N (ablation).
    pub protect_small_output_rows: usize,
    /// Layer kinds whose rows are never dropped (diagnostic/ablation knob;
    /// empty = the paper's "all weight matrices droppable").
    pub protect_kinds: Vec<fedbiad_nn::params::LayerKind>,
    /// Carry each client's stage-one pattern across rounds instead of
    /// re-sampling it fresh every round (Algorithm 1 line 11 re-samples).
    /// Marginally the pattern is still uniform over Z_S^N and still
    /// adapted by the loss-trend rule — persistence only adds the
    /// cross-round sub-network coherence that ordered-dropout methods get
    /// for free; without it, masked updates from churning sub-networks
    /// largely cancel at small cohort sizes (DESIGN.md §4). Default true;
    /// set false for the literal per-round re-sampling (ablation).
    pub persistent_patterns: bool,
    /// Draw the stage-one pattern from a *round-shared* RNG stream so
    /// every client in the cohort starts from the same β (the
    /// server-decided-sub-model convention of federated dropout,
    /// Caldas et al.). Clients still adapt individually via the loss
    /// trend. Off by default (client-private draws).
    pub shared_round_patterns: bool,
}

impl FedBiadConfig {
    /// Paper defaults for dropout rate `p` and stage boundary `rb`.
    /// Aggregation defaults to [`ZeroMode::StaleFill`] — the operational
    /// reading of step 4 / eq. (10) under which the paper's convergence
    /// curves are reproducible; the literal zeros-pull is available as an
    /// ablation (see `ablation` bench and DESIGN.md §4.2).
    pub fn paper(p: f32, rb: usize) -> Self {
        Self {
            dropout_rate: p,
            tau: 3,
            stage_boundary: rb,
            sampling: PatternSampling::Global,
            aggregation: ZeroMode::StaleFill,
            noise: NoiseLevel::Theory,
            weight_bound: 2.0,
            protect_small_output_rows: 64,
            protect_kinds: Vec::new(),
            persistent_patterns: true,
            shared_round_patterns: false,
        }
    }
}

/// Per-client persistent state.
pub struct FedBiadClientState {
    /// Weight score vector E^k (eq. (9)).
    pub scores: WeightScores,
    /// The client's current dropping pattern, carried across rounds when
    /// `persistent_patterns` is set.
    pub pattern: Option<DropPattern>,
    /// Sketch-compression residual/velocity (only used with
    /// [`FedBiad::with_sketch`]).
    pub sketch: SketchState,
}

/// The FedBIAD algorithm.
pub struct FedBiad {
    cfg: FedBiadConfig,
    sketch: Option<Arc<dyn Compressor>>,
    /// Server-side EMA of each row unit's empirical keep frequency
    /// β̄_j = Σ_k |D_k|·β_{k,j} / Σ_k |D_k| — the spike-and-slab posterior
    /// keep probability used by [`FedBiad::eval_params`]. Lazily sized.
    keep_freq: Vec<f32>,
}

impl FedBiad {
    /// Plain FedBIAD.
    pub fn new(cfg: FedBiadConfig) -> Self {
        Self {
            cfg,
            sketch: None,
            keep_freq: Vec::new(),
        }
    }

    /// FedBIAD combined with a sketched compressor (paper Fig. 5 /
    /// Table II "FedBIAD+DGC").
    pub fn with_sketch(cfg: FedBiadConfig, comp: Arc<dyn Compressor>) -> Self {
        Self {
            cfg,
            sketch: Some(comp),
            keep_freq: Vec::new(),
        }
    }

    /// Is `round` (0-based) in stage one? The paper's stage rule is
    /// 1-based: r ≤ R_b.
    fn stage_one(&self, round: usize) -> bool {
        round < self.cfg.stage_boundary
    }

    /// Rows that must always be kept (small classification heads — see
    /// `protect_small_output_rows`).
    fn forced_keep(&self, params: &ParamSet) -> fedbiad_nn::mask::BitVec {
        let j = params.num_row_units();
        let mut forced = fedbiad_nn::mask::BitVec::new(j, false);
        for e in 0..params.num_entries() {
            let meta = params.meta(e);
            if !meta.droppable {
                continue;
            }
            let small_head = meta.kind == fedbiad_nn::params::LayerKind::DenseOutput
                && params.entry_units(e) <= self.cfg.protect_small_output_rows;
            let protected_kind = self.cfg.protect_kinds.contains(&meta.kind);
            if small_head || protected_kind {
                for u in 0..params.entry_units(e) {
                    if let Some(g) = params.row_unit_index(e, u) {
                        forced.set(g, true);
                    }
                }
            }
        }
        forced
    }

    fn sample_pattern(
        &self,
        params: &ParamSet,
        j: usize,
        keep: usize,
        rng: &mut StdRng,
    ) -> DropPattern {
        match self.cfg.sampling {
            PatternSampling::Global => {
                let forced = self.forced_keep(params);
                if forced.count_ones() == 0 {
                    DropPattern::sample_global(j, keep, rng)
                } else {
                    DropPattern::sample_global_forced(j, keep, &forced, rng)
                }
            }
            PatternSampling::PerEntry => {
                DropPattern::sample_per_entry(params, self.cfg.dropout_rate, rng)
            }
        }
    }
}

/// The per-iteration hooks implementing Algorithm 1 lines 15–27.
struct BiadHooks<'a> {
    fedbiad: &'a FedBiad,
    params_template: &'a ParamSet,
    pattern: DropPattern,
    tracker: LossTrend,
    scores: &'a mut WeightScores,
    stage_one: bool,
    s_tilde: f32,
    keep: usize,
    j: usize,
    noise_rng: StdRng,
    pattern_rng: StdRng,
    resamples: usize,
}

impl LocalHooks for BiadHooks<'_> {
    fn make_theta(&mut self, _v: usize, u: &ParamSet) -> Option<ParamSet> {
        // Algorithm 1 line 16: θ ~ β ∘ N(U, s̃²I).
        Some(sample_theta(
            u,
            &self.pattern,
            self.s_tilde,
            &mut self.noise_rng,
        ))
    }

    fn mask_grads(&mut self, _v: usize, grads: &mut ParamSet) {
        // Eq. (7): only non-dropped rows update U.
        self.pattern.mask_grads(grads);
    }

    fn post_iteration(&mut self, v: usize, loss: f32) {
        self.tracker.observe(loss);
        let held = self.pattern.clone();
        let mut favourable = true;
        // Algorithm 1 lines 18–25 (stage one only): every τ iterations,
        // keep the pattern when ΔL ≤ 0, re-sample otherwise.
        if self.stage_one && self.tracker.at_checkpoint(v) {
            if let Some(gap) = self.tracker.gap() {
                if gap > 0.0 {
                    favourable = false;
                    self.pattern = self.fedbiad.sample_pattern(
                        self.params_template,
                        self.j,
                        self.keep,
                        &mut self.pattern_rng,
                    );
                    self.resamples += 1;
                }
            }
        }
        // Algorithm 1 line 26 / eq. (9).
        self.scores.update(&held, &self.pattern, favourable);
    }
}

impl FlAlgorithm for FedBiad {
    type ClientState = FedBiadClientState;
    type RoundCtx = ();

    fn name(&self) -> String {
        match &self.sketch {
            Some(c) => format!("fedbiad+{}", c.name()),
            None => "fedbiad".into(),
        }
    }

    fn init_client_state(
        &self,
        _client_id: usize,
        _model: &dyn Model,
        global: &ParamSet,
    ) -> FedBiadClientState {
        FedBiadClientState {
            scores: WeightScores::new(global.num_row_units()),
            pattern: None,
            sketch: SketchState::default(),
        }
    }

    fn begin_round(&mut self, _info: RoundInfo, _global: &ParamSet) {}

    fn local_update(
        &self,
        info: RoundInfo,
        _rctx: &(),
        client_id: usize,
        state: &mut FedBiadClientState,
        global: &ParamSet,
        data: &ClientData,
        model: &dyn Model,
        cfg: &TrainConfig,
    ) -> LocalResult {
        let j = global.num_row_units();
        let keep = keep_count(j, self.cfg.dropout_rate);
        let mut u = global.clone();

        // Shared-round mode: all cohort members draw the same initial β
        // (stream keyed on the round only).
        let pattern_client = if self.cfg.shared_round_patterns {
            u64::MAX
        } else {
            client_id as u64
        };
        let mut pattern_rng = stream(
            info.seed,
            StreamTag::Pattern,
            info.round as u64,
            pattern_client,
        );
        let noise_rng = stream(
            info.seed,
            StreamTag::PosteriorNoise,
            info.round as u64,
            client_id as u64,
        );

        let stage_one = self.stage_one(info.round);
        let pattern = if stage_one {
            // Algorithm 1 line 11: random initial pattern — carried over
            // from the client's previous participation when
            // `persistent_patterns` is on (see config docs).
            match (&state.pattern, self.cfg.persistent_patterns) {
                (Some(p), true) if p.len() == j => p.clone(),
                _ => self.sample_pattern(global, j, keep, &mut pattern_rng),
            }
        } else {
            // Algorithm 1 line 13: pattern from the weight score vector.
            let forced = self.forced_keep(global);
            if forced.count_ones() == 0 {
                state.scores.to_pattern(keep)
            } else {
                DropPattern::from_scores_forced(&state.scores.e, keep, &forced)
            }
        };

        // s̃² per eq. (13) with m_r = r·V·|D_k| (per-client approximation
        // of min|D_k| — the server-side min is not visible to a client).
        let arch = model.arch();
        let m_r = client_total_data(info.round + 1, cfg.local_iters, data.num_samples());
        let kept_weights =
            (arch.total_weights as f64 * (1.0 - self.cfg.dropout_rate) as f64) as usize;
        let s_tilde = resolve_noise(
            self.cfg.noise,
            &arch,
            kept_weights,
            m_r,
            self.cfg.weight_bound,
        );

        let mut hooks = BiadHooks {
            fedbiad: self,
            params_template: global,
            pattern,
            tracker: LossTrend::new(self.cfg.tau),
            scores: &mut state.scores,
            stage_one,
            s_tilde,
            keep,
            j,
            noise_rng,
            pattern_rng,
            resamples: 0,
        };

        let id = LocalRunId {
            seed: info.seed,
            round: info.round,
            client: client_id,
        };
        let stats = run_local_training(id, model, data, cfg, &mut u, &mut hooks);
        let final_pattern = hooks.pattern.clone();
        drop(hooks); // release the &mut borrow of state.scores

        // Upload: non-dropped rows of U under the *final* pattern β^{k,V}.
        let final_mask = final_pattern.to_mask(global);
        // Persist the (possibly loss-trend-refined) pattern for the
        // client's next participation.
        state.pattern = Some(final_pattern);
        let upload = match &self.sketch {
            None => Upload::masked_weights_with(u, final_mask, info.agg),
            Some(comp) => {
                let mut masked_u = u;
                final_mask.apply(&mut masked_u);
                let mut crng = stream(
                    info.seed,
                    StreamTag::Compress,
                    info.round as u64,
                    client_id as u64,
                );
                let out = combo::sketch_masked_weights(
                    comp.as_ref(),
                    &mut state.sketch,
                    &masked_u,
                    global,
                    &final_mask,
                    info.round,
                    &mut crng,
                    !info.agg.streaming,
                );
                // Wire = compressed payload + the 1-bit/row pattern.
                let pattern_overhead =
                    final_mask.wire_bytes(&masked_u) - final_mask.kept_params(&masked_u) as u64 * 4;
                let wire_bytes = out.payload_bytes + pattern_overhead;
                if info.agg.streaming {
                    let msg =
                        fedbiad_compress::codec::encode_weights_delta(&final_mask, &out.payload);
                    debug_assert_eq!(msg.body_bytes(), wire_bytes);
                    Upload::wire(
                        fedbiad_fl::upload::UploadKind::Weights,
                        msg,
                        final_mask,
                        wire_bytes,
                    )
                } else {
                    Upload {
                        kind: fedbiad_fl::upload::UploadKind::Weights,
                        body: fedbiad_fl::upload::UploadBody::Dense(
                            out.reconstructed.expect("dense reference path"),
                        ),
                        coverage: final_mask,
                        wire_bytes,
                    }
                }
            }
        };

        LocalResult {
            upload,
            train_loss: stats.mean_loss,
            loss_improvement: stats.improvement(),
            local_seconds: stats.seconds,
            num_samples: data.num_samples(),
        }
    }

    fn aggregate(
        &mut self,
        info: RoundInfo,
        _rctx: &(),
        global: &mut ParamSet,
        results: &[(usize, LocalResult)],
    ) {
        // Eq. (10): weighted average of reconstructed β∘U.
        let ups: Vec<(f32, &Upload)> = results
            .iter()
            .map(|(_, r)| (r.num_samples as f32, &r.upload))
            .collect();
        aggregate_weights(global, &ups, self.cfg.aggregation, info.agg)
            .expect("aggregation failed");

        // Update the posterior keep-frequency EMA from this round's
        // coverage (drives the eq. (11)/(12) predictive scaling in
        // `eval_params`).
        let j = global.num_row_units();
        if self.keep_freq.len() != j {
            self.keep_freq = vec![1.0 - self.cfg.dropout_rate; j];
            let forced = self.forced_keep(global);
            for ju in 0..j {
                if forced.get(ju) {
                    self.keep_freq[ju] = 1.0;
                }
            }
        }
        let total_w: f32 = results.iter().map(|(_, r)| r.num_samples as f32).sum();
        if total_w <= 0.0 {
            return;
        }
        const EMA: f32 = 0.2;
        for ju in 0..j {
            let (e, u) = global.row_unit(ju);
            // Gate-0 row of the unit decides coverage (units are dropped
            // atomically).
            let cols = global.mat(e).cols();
            let mut kept_w = 0.0f32;
            for (_, r) in results {
                if r.upload.coverage.per_entry[e].covers(u, 0, cols) {
                    kept_w += r.num_samples as f32;
                }
            }
            let freq = kept_w / total_w;
            self.keep_freq[ju] = (1.0 - EMA) * self.keep_freq[ju] + EMA * freq;
        }
    }

    fn eval_params(&self, global: &ParamSet) -> ParamSet {
        // Predictive posterior mean: E[β∘w] = β̄·µ per row unit (the
        // classical dropout inference scaling; eq. (11)/(12)).
        let mut deploy = global.clone();
        if self.keep_freq.len() == global.num_row_units() {
            for (ju, &f) in self.keep_freq.iter().enumerate() {
                deploy.scale_row_unit(ju, f.clamp(0.0, 1.0));
            }
        } else {
            // Before any aggregation: uniform prior keep probability.
            let f = 1.0 - self.cfg.dropout_rate;
            for ju in 0..global.num_row_units() {
                deploy.scale_row_unit(ju, f);
            }
        }
        deploy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_data::dataset::ImageSet;
    use fedbiad_nn::mlp::MlpModel;

    fn toy_setup() -> (MlpModel, ParamSet, ClientData) {
        let model = MlpModel::new(6, 8, 3);
        let mut rng = stream(1, StreamTag::Init, 0, 0);
        let global = model.init_params(&mut rng);
        let mut set = ImageSet::empty(6);
        for i in 0..60 {
            let c = i % 3;
            let mut f = [0.05f32; 6];
            f[c * 2] = 1.0;
            f[c * 2 + 1] = 1.0;
            set.push(&f, c as u32);
        }
        (model, global, ClientData::Image(set))
    }

    fn cfg() -> TrainConfig {
        TrainConfig {
            local_iters: 12,
            batch_size: 16,
            lr: 0.3,
            ..Default::default()
        }
    }

    #[test]
    fn upload_respects_dropout_budget() {
        let (model, global, data) = toy_setup();
        let algo = FedBiad::new(FedBiadConfig::paper(0.5, 5));
        let mut st = algo.init_client_state(0, &model, &global);
        let info = RoundInfo {
            round: 0,
            total_rounds: 10,
            seed: 7,
            agg: Default::default(),
        };
        let res = algo.local_update(info, &(), 0, &mut st, &global, &data, &model, &cfg());
        // Exactly keep_count rows transmitted.
        let j = global.num_row_units();
        let keep = keep_count(j, 0.5);
        let kept_rows: usize = (0..global.num_entries())
            .map(|e| match &res.upload.coverage.per_entry[e] {
                fedbiad_nn::CoverageMask::Rows(b) => b.count_ones(),
                _ => 0,
            })
            .sum();
        assert_eq!(kept_rows, keep);
        assert!(res.upload.wire_bytes < global.total_bytes());
    }

    #[test]
    fn stage_two_uses_scores_and_is_deterministic() {
        let (model, global, data) = toy_setup();
        let algo = FedBiad::new(FedBiadConfig::paper(0.5, 2)); // Rb = 2
        let mut st = algo.init_client_state(0, &model, &global);
        // Seed scores so stage two has a clear preference.
        for (i, e) in st.scores.e.iter_mut().enumerate() {
            *e = i as f32;
        }
        let info = RoundInfo {
            round: 5,
            total_rounds: 10,
            seed: 7,
            agg: Default::default(),
        }; // r=6 > Rb
        let res = algo.local_update(info, &(), 0, &mut st, &global, &data, &model, &cfg());
        let j = global.num_row_units();
        let keep = keep_count(j, 0.5);
        let expected = st.scores.to_pattern(keep).to_mask(&global);
        // Scores were bumped during the round, but only for kept rows, so
        // the *selected set* stays the argmax set — compare coverage.
        assert_eq!(res.upload.coverage, expected);
    }

    #[test]
    fn scores_accumulate_during_training() {
        let (model, global, data) = toy_setup();
        let algo = FedBiad::new(FedBiadConfig::paper(0.5, 10));
        let mut st = algo.init_client_state(0, &model, &global);
        let info = RoundInfo {
            round: 0,
            total_rounds: 10,
            seed: 3,
            agg: Default::default(),
        };
        let _ = algo.local_update(info, &(), 0, &mut st, &global, &data, &model, &cfg());
        let total: f32 = st.scores.e.iter().sum();
        assert!(total > 0.0, "scores should accumulate");
        // Upper bound: keep · V (every kept row bumped every iteration).
        let j = global.num_row_units();
        let keep = keep_count(j, 0.5) as f32;
        assert!(total <= keep * 12.0 + 1e-3);
    }

    #[test]
    fn fedbiad_learns_end_to_end() {
        use fedbiad_data::FedDataset;
        use fedbiad_fl::runner::{Experiment, ExperimentConfig};
        let (model, _, _) = toy_setup();
        // 4 clients with the same toy distribution.
        let clients: Vec<ClientData> = (0..4)
            .map(|_| {
                let (_, _, d) = toy_setup();
                d
            })
            .collect();
        let (_, _, test) = toy_setup();
        let fd = FedDataset {
            name: "toy".into(),
            clients,
            lazy: None,
            test,
        };
        let cfg = ExperimentConfig {
            rounds: 15,
            client_fraction: 0.5,
            seed: 11,
            train: TrainConfig {
                local_iters: 8,
                batch_size: 16,
                lr: 0.3,
                ..Default::default()
            },
            eval_topk: 1,
            eval_every: 1,
            eval_max_samples: 0,
            agg: Default::default(),
            cohort: None,
            sampler: Default::default(),
            adversary: None,
            churn: None,
        };
        let algo = FedBiad::new(FedBiadConfig::paper(0.3, 12));
        let log = Experiment::new(&model, &fd, algo, cfg).run();
        let last = log.records.last().unwrap().test_acc;
        assert!(
            last > 0.85,
            "FedBIAD should learn the toy task, acc = {last}"
        );
        // Uplink strictly below FedAvg's full model.
        let full = model
            .init_params(&mut stream(1, StreamTag::Init, 0, 0))
            .total_bytes();
        assert!(log.mean_upload_bytes() < full);
    }

    #[test]
    fn fedbiad_with_identity_sketch_matches_plain() {
        use fedbiad_compress::none::NoCompression;
        let (model, global, data) = toy_setup();
        let plain = FedBiad::new(FedBiadConfig::paper(0.4, 10));
        let sketched = FedBiad::with_sketch(FedBiadConfig::paper(0.4, 10), Arc::new(NoCompression));
        let info = RoundInfo {
            round: 0,
            total_rounds: 10,
            seed: 9,
            agg: Default::default(),
        };
        let mut st_a = plain.init_client_state(0, &model, &global);
        let mut st_b = sketched.init_client_state(0, &model, &global);
        let a = plain.local_update(info, &(), 0, &mut st_a, &global, &data, &model, &cfg());
        let b = sketched.local_update(info, &(), 0, &mut st_b, &global, &data, &model, &cfg());
        // Identity compression reconstructs the masked weights up to the
        // f32 rounding of the delta round-trip (g + (u − g)).
        for (x, y) in a
            .upload
            .params()
            .flatten()
            .iter()
            .zip(b.upload.params().flatten())
        {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
        // The identity compressor sends the same kept values densely, so
        // the wire bytes match plain FedBIAD exactly (values + pattern).
        assert_eq!(b.upload.wire_bytes, a.upload.wire_bytes);
    }
}
