//! Combining row dropout with sketched compression (paper Fig. 5):
//! the client (1) drops rows, (2) compresses the variational parameters of
//! the remaining rows, (3) uploads the compressed payload + the 1-bit/row
//! pattern; the server decompresses and reconstructs β∘U before
//! aggregating.
//!
//! Implementation detail (DESIGN.md §4): the compressor operates on the
//! *delta* of the kept-row parameters against the received global (that is
//! what DGC-style accumulators are defined over), gathered into a compact
//! vector indexed by the kept flat positions. The client's residual /
//! velocity state lives at full length; only the kept positions are
//! gathered, updated, and scattered back — so mass parked on a dropped row
//! is transmitted when that row is next kept, and no error-feedback mass is
//! ever discarded.

use fedbiad_compress::{ClientState as SketchState, Compressor};
use fedbiad_nn::{ModelMask, ParamSet};
use rand::rngs::StdRng;

/// Flat indices (in [`ParamSet::flatten`] order) covered by `mask`.
pub fn kept_flat_indices(params: &ParamSet, mask: &ModelMask) -> Vec<usize> {
    let mut out = Vec::new();
    let mut off = 0usize;
    for e in 0..params.num_entries() {
        let m = params.mat(e);
        let cols = m.cols();
        let cov = &mask.per_entry[e];
        for r in 0..m.rows() {
            for c in 0..cols {
                if cov.covers(r, c, cols) {
                    out.push(off + r * cols + c);
                }
            }
        }
        off += m.len();
        let bias_len = params.bias(e).len();
        for r in 0..bias_len {
            if cov.covers_bias(r) {
                out.push(off + r);
            }
        }
        off += bias_len;
    }
    out
}

/// Result of sketching a masked-weights upload.
pub struct SketchOutcome {
    /// Server-side reconstruction of β∘U (masked global + decoded delta).
    /// `None` when the caller asked for the wire payload only (the
    /// streaming path never materialises it).
    pub reconstructed: Option<ParamSet>,
    /// The compressor's payload over the covered-subvector delta — what a
    /// streaming upload puts on the wire
    /// (`fedbiad_compress::codec::encode_weights_delta`).
    pub payload: fedbiad_compress::codec::Payload,
    /// Compressed payload bytes (excluding the dropping-pattern bits,
    /// which the caller adds).
    pub payload_bytes: u64,
    /// Number of transmitted values.
    pub sent_values: u64,
}

/// Compress the kept-row delta of `masked_u` against `global`. With
/// `want_dense`, also return the server-side dense reconstruction (the
/// reference path); without it, only the wire payload is produced.
#[allow(clippy::too_many_arguments)]
pub fn sketch_masked_weights(
    comp: &dyn Compressor,
    state: &mut SketchState,
    masked_u: &ParamSet,
    global: &ParamSet,
    mask: &ModelMask,
    round: usize,
    rng: &mut StdRng,
    want_dense: bool,
) -> SketchOutcome {
    let mut masked_g = global.clone();
    mask.apply(&mut masked_g);
    let fu = masked_u.flatten();
    let fg = masked_g.flatten();
    let kept = kept_flat_indices(masked_u, mask);
    state.ensure_len(fu.len());

    // Gather the compact delta and the compact compressor state.
    let delta: Vec<f32> = kept.iter().map(|&i| fu[i] - fg[i]).collect();
    let mut tmp = SketchState {
        residual: kept.iter().map(|&i| state.residual[i]).collect(),
        velocity: kept.iter().map(|&i| state.velocity[i]).collect(),
    };
    let compressed = comp.compress(&mut tmp, &delta, round, rng);

    // Scatter state back; untouched (dropped) positions keep their mass.
    for (pos, &i) in kept.iter().enumerate() {
        state.residual[i] = tmp.residual[pos];
        state.velocity[i] = tmp.velocity[pos];
    }

    let reconstructed = want_dense.then(|| {
        let mut rec_flat = fg;
        for (pos, &i) in kept.iter().enumerate() {
            rec_flat[i] += compressed.decoded[pos];
        }
        let mut reconstructed = masked_u.zeros_like();
        reconstructed.unflatten_from(&rec_flat);
        reconstructed
    });

    SketchOutcome {
        reconstructed,
        payload: compressed.payload,
        payload_bytes: compressed.wire_bytes,
        sent_values: compressed.sent_values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_compress::none::NoCompression;
    use fedbiad_nn::mask::BitVec;
    use fedbiad_nn::params::{EntryMeta, LayerKind};
    use fedbiad_tensor::rng::{stream, StreamTag};
    use fedbiad_tensor::Matrix;

    fn params(v: f32) -> ParamSet {
        let mut p = ParamSet::new();
        p.push_entry(
            Matrix::full(3, 2, v),
            Some(vec![v; 3]),
            EntryMeta::new("w", LayerKind::DenseHidden, true, true),
        );
        p
    }

    fn row_mask(p: &ParamSet, kept: [bool; 3]) -> ModelMask {
        let mut beta = BitVec::new(3, true);
        for (r, &k) in kept.iter().enumerate() {
            beta.set(r, k);
        }
        ModelMask::from_row_pattern(p, &beta)
    }

    #[test]
    fn kept_indices_follow_flatten_order() {
        let p = params(1.0);
        let mask = row_mask(&p, [true, false, true]);
        let idx = kept_flat_indices(&p, &mask);
        // Rows 0 and 2 of the 3×2 matrix: flat 0,1,4,5; biases 0 and 2:
        // flat 6 and 8.
        assert_eq!(idx, vec![0, 1, 4, 5, 6, 8]);
    }

    #[test]
    fn identity_compressor_reconstructs_masked_u_exactly() {
        let global = params(1.0);
        let mut u = params(1.0);
        u.mat_mut(0).set(0, 0, 5.0);
        u.mat_mut(0).set(2, 1, -3.0);
        let mask = row_mask(&global, [true, false, true]);
        let mut masked_u = u.clone();
        mask.apply(&mut masked_u);
        let mut st = SketchState::default();
        let mut rng = stream(1, StreamTag::Compress, 0, 0);
        let out = sketch_masked_weights(
            &NoCompression,
            &mut st,
            &masked_u,
            &global,
            &mask,
            0,
            &mut rng,
            true,
        );
        let rec = out.reconstructed.expect("dense reconstruction requested");
        assert_eq!(rec.flatten(), masked_u.flatten());
        // Payload covers exactly the kept scalars.
        assert_eq!(out.sent_values, 6);
        assert_eq!(out.payload_bytes, 6 * 4);
    }

    #[test]
    fn dropped_row_state_survives_until_rekept() {
        use fedbiad_compress::stc::Stc;
        let global = params(0.0);
        let mut u = params(0.0);
        u.mat_mut(0).set(1, 0, 4.0); // mass on row 1
        u.mat_mut(0).set(0, 0, 8.0);
        let comp = Stc { keep_fraction: 0.2 }; // k = 2 of 6-ish kept values
        let mut st = SketchState::default();
        let mut rng = stream(2, StreamTag::Compress, 0, 0);

        // Round 0: row 1 dropped — its delta must NOT touch the residual.
        let mask0 = row_mask(&global, [true, false, true]);
        let mut mu0 = u.clone();
        mask0.apply(&mut mu0);
        let _ = sketch_masked_weights(&comp, &mut st, &mu0, &global, &mask0, 0, &mut rng, true);
        // Flat index of (row1, col0) is 2.
        assert_eq!(st.residual[2], 0.0, "dropped row has no residual yet");

        // Round 1: row 1 kept — its delta flows through the compressor and
        // (with top-k selection) the residual/decoded split conserves it.
        let mask1 = row_mask(&global, [false, true, true]);
        let mut mu1 = u.clone();
        mask1.apply(&mut mu1);
        let out = sketch_masked_weights(&comp, &mut st, &mu1, &global, &mask1, 1, &mut rng, true);
        let recon = out.reconstructed.expect("dense").mat(0).get(1, 0);
        let resid = st.residual[2];
        assert!(
            (recon + resid - 4.0).abs() < 1e-5,
            "mass conservation: recon {recon} + residual {resid} ≠ 4"
        );
    }
}
