//! AFD [15] (Bouacida et al.): adaptive federated dropout.
//!
//! The *server* maintains a score map over droppable units and decides the
//! dropping structure each round; clients train the received sub-model and
//! "cannot adjust dropping structures during local training" (paper §I) —
//! the inflexibility FedBIAD improves on. Scores blend (a) the unit's
//! weight-norm in the current global model and (b) an exponential moving
//! average of round-loss improvements credited to active units; ε-greedy
//! exploration keeps the map from locking in early. Like FedDrop, AFD is
//! restricted to non-recurrent structure.

use super::{masked_local_update, units_to_drop};
use crate::neuron::{derive_groups, mask_from_dropped_units, NeuronGroup};
use fedbiad_compress::{ClientState as SketchState, Compressor};
use fedbiad_data::ClientData;
use fedbiad_fl::aggregate::{aggregate_weights, ZeroMode};
use fedbiad_fl::algorithm::{FlAlgorithm, LocalResult, RoundInfo, TrainConfig};
use fedbiad_fl::upload::Upload;
use fedbiad_nn::{Model, ParamSet};
use fedbiad_tensor::rng::{stream, StreamTag};
use rand::Rng;
use std::sync::Arc;

/// Server-adaptive federated dropout.
pub struct Afd {
    rate: f32,
    /// ε-greedy exploration probability per dropped unit.
    epsilon: f32,
    sketch: Option<Arc<dyn Compressor>>,
    /// EMA of loss-improvement credit per (group, unit).
    credit: Vec<Vec<f32>>,
    /// Units dropped in the current round (to know whom to credit).
    last_drops: Vec<Vec<usize>>,
}

impl Afd {
    /// Plain AFD at dropout rate `rate`.
    pub fn new(rate: f32) -> Self {
        assert!((0.0..1.0).contains(&rate));
        Self {
            rate,
            epsilon: 0.1,
            sketch: None,
            credit: Vec::new(),
            last_drops: Vec::new(),
        }
    }

    /// AFD combined with a sketched compressor (Table II "AFD+DGC").
    pub fn with_sketch(rate: f32, comp: Arc<dyn Compressor>) -> Self {
        Self {
            sketch: Some(comp),
            ..Self::new(rate)
        }
    }

    /// Unit score = global weight-norm of the unit's rows/cols + credit.
    fn unit_scores(&self, global: &ParamSet, groups: &[NeuronGroup]) -> Vec<Vec<f32>> {
        groups
            .iter()
            .enumerate()
            .map(|(gi, g)| {
                (0..g.count)
                    .map(|u| {
                        let mut norm = 0.0f32;
                        for &(e, off) in &g.row_blocks {
                            norm += fedbiad_tensor::ops::norm_sq(global.mat(e).row(off + u));
                        }
                        for &(e, off) in &g.col_blocks {
                            let m = global.mat(e);
                            for r in 0..m.rows() {
                                let v = m.get(r, off + u);
                                norm += v * v;
                            }
                        }
                        let credit = self
                            .credit
                            .get(gi)
                            .and_then(|c| c.get(u))
                            .copied()
                            .unwrap_or(0.0);
                        norm.sqrt() + credit
                    })
                    .collect()
            })
            .collect()
    }
}

/// The server's broadcast: per-group dropped units for this round.
pub struct AfdRoundCtx {
    /// `drops[g]` = unit ids dropped in group g.
    pub drops: Vec<Vec<usize>>,
}

impl FlAlgorithm for Afd {
    type ClientState = SketchState;
    type RoundCtx = AfdRoundCtx;

    fn name(&self) -> String {
        match &self.sketch {
            Some(c) => format!("afd+{}", c.name()),
            None => "afd".into(),
        }
    }

    fn init_client_state(&self, _: usize, _: &dyn Model, _: &ParamSet) -> SketchState {
        SketchState::default()
    }

    fn begin_round(&mut self, info: RoundInfo, global: &ParamSet) -> AfdRoundCtx {
        let groups = derive_groups(global);
        if self.credit.len() != groups.len() {
            self.credit = groups.iter().map(|g| vec![0.0; g.count]).collect();
        }
        let scores = self.unit_scores(global, &groups);
        let mut rng = stream(info.seed, StreamTag::Baseline, info.round as u64, u64::MAX);
        let drops: Vec<Vec<usize>> = groups
            .iter()
            .zip(&scores)
            .map(|(g, s)| {
                if g.recurrent {
                    return Vec::new(); // AFD cannot touch recurrent structure
                }
                let n_drop = units_to_drop(g.count, self.rate);
                // Drop the lowest-scoring units…
                let mut order: Vec<usize> = (0..g.count).collect();
                order.sort_by(|&a, &b| s[a].partial_cmp(&s[b]).expect("NaN score").then(a.cmp(&b)));
                let mut dropped: Vec<usize> = order[..n_drop].to_vec();
                // …with ε-greedy exploration swaps.
                for d in dropped.iter_mut() {
                    if rng.gen::<f32>() < self.epsilon {
                        *d = rng.gen_range(0..g.count);
                    }
                }
                dropped.sort_unstable();
                dropped.dedup();
                dropped
            })
            .collect();
        self.last_drops = drops.clone();
        AfdRoundCtx { drops }
    }

    fn local_update(
        &self,
        info: RoundInfo,
        rctx: &AfdRoundCtx,
        client_id: usize,
        state: &mut SketchState,
        global: &ParamSet,
        data: &ClientData,
        model: &dyn Model,
        cfg: &TrainConfig,
    ) -> LocalResult {
        let groups = derive_groups(global);
        let drops: Vec<(&NeuronGroup, Vec<usize>)> = groups
            .iter()
            .zip(&rctx.drops)
            .filter(|(_, d)| !d.is_empty())
            .map(|(g, d)| (g, d.clone()))
            .collect();
        let mask = mask_from_dropped_units(global, &drops);
        masked_local_update(
            info,
            client_id,
            global,
            data,
            model,
            cfg,
            mask,
            self.sketch.as_deref(),
            state,
        )
    }

    fn aggregate(
        &mut self,
        info: RoundInfo,
        rctx: &AfdRoundCtx,
        global: &mut ParamSet,
        results: &[(usize, LocalResult)],
    ) {
        let ups: Vec<(f32, &Upload)> = results
            .iter()
            .map(|(_, r)| (r.num_samples as f32, &r.upload))
            .collect();
        aggregate_weights(global, &ups, ZeroMode::HoldersOnly, info.agg)
            .expect("aggregation failed");

        // Credit active units with the mean loss improvement (EMA 0.9).
        let mean_impr = results.iter().map(|(_, r)| r.loss_improvement).sum::<f32>()
            / results.len().max(1) as f32;
        for (gi, credits) in self.credit.iter_mut().enumerate() {
            let dropped = rctx.drops.get(gi).cloned().unwrap_or_default();
            for (u, c) in credits.iter_mut().enumerate() {
                let active = !dropped.contains(&u);
                let target = if active { mean_impr } else { 0.0 };
                *c = 0.9 * *c + 0.1 * target;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_data::dataset::ImageSet;
    use fedbiad_nn::mlp::MlpModel;

    fn setup() -> (MlpModel, ParamSet, ClientData) {
        let model = MlpModel::new(4, 12, 2);
        let global = model.init_params(&mut stream(1, StreamTag::Init, 0, 0));
        let mut set = ImageSet::empty(4);
        for i in 0..20 {
            set.push(&[0.1, 0.9, 0.3, 0.7], (i % 2) as u32);
        }
        (model, global, ClientData::Image(set))
    }

    #[test]
    fn server_decides_one_drop_set_for_all_clients() {
        let (model, global, data) = setup();
        let mut algo = Afd::new(0.5);
        let info = RoundInfo {
            round: 0,
            total_rounds: 5,
            seed: 8,
            agg: Default::default(),
        };
        let rctx = algo.begin_round(info, &global);
        assert!(!rctx.drops[0].is_empty());
        let cfg = TrainConfig {
            local_iters: 2,
            batch_size: 8,
            lr: 0.1,
            ..Default::default()
        };
        let mut st0 = SketchState::default();
        let mut st1 = SketchState::default();
        let a = algo.local_update(info, &rctx, 0, &mut st0, &global, &data, &model, &cfg);
        let b = algo.local_update(info, &rctx, 1, &mut st1, &global, &data, &model, &cfg);
        // Identical coverage for every client — the defining AFD property.
        assert_eq!(a.upload.coverage, b.upload.coverage);
    }

    #[test]
    fn low_norm_units_are_dropped_first() {
        let (model, mut global, _) = setup();
        // Make unit 3 tiny and unit 5 huge in *both* of the unit's weight
        // blocks (its W1 row and its W2 column) — the score sums both, so
        // shrinking only the row would leave the verdict at the mercy of
        // the random W2 init.
        for c in 0..4 {
            global.mat_mut(0).set(3, c, 1e-6);
            global.mat_mut(0).set(5, c, 10.0);
        }
        for r in 0..2 {
            global.mat_mut(1).set(r, 3, 1e-6);
            global.mat_mut(1).set(r, 5, 10.0);
        }
        let mut algo = Afd::new(0.25);
        algo.epsilon = 0.0; // no exploration for determinism
        let info = RoundInfo {
            round: 0,
            total_rounds: 5,
            seed: 8,
            agg: Default::default(),
        };
        let rctx = algo.begin_round(info, &global);
        assert!(rctx.drops[0].contains(&3), "{:?}", rctx.drops[0]);
        assert!(!rctx.drops[0].contains(&5));
        let _ = model;
    }

    #[test]
    fn credit_moves_with_improvement() {
        let (model, global, data) = setup();
        let mut algo = Afd::new(0.5);
        algo.epsilon = 0.0;
        let info = RoundInfo {
            round: 0,
            total_rounds: 5,
            seed: 8,
            agg: Default::default(),
        };
        let rctx = algo.begin_round(info, &global);
        let cfg = TrainConfig {
            local_iters: 6,
            batch_size: 8,
            lr: 0.3,
            ..Default::default()
        };
        let mut st = SketchState::default();
        let res = algo.local_update(info, &rctx, 0, &mut st, &global, &data, &model, &cfg);
        let mut g = global.clone();
        algo.aggregate(info, &rctx, &mut g, &[(0, res)]);
        // Some credit flowed to active units.
        let nonzero = algo.credit[0].iter().filter(|&&c| c != 0.0).count();
        assert!(nonzero > 0);
        // Dropped units get no credit.
        for &d in &rctx.drops[0] {
            assert_eq!(algo.credit[0][d], 0.0);
        }
    }
}
