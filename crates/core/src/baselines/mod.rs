//! Baseline FL algorithms compared against FedBIAD in the paper's
//! evaluation (§V-A): FedAvg \[1\], FedDrop \[12\], AFD \[15\], FedMP \[27\],
//! FjORD \[14\] and HeteroFL \[43\].
//!
//! All of the dropout baselines share one client skeleton — fix a coverage
//! mask for the round, train the masked sub-model, upload it — and differ
//! only in *how the mask is chosen* and *where they are allowed to drop*
//! (none of them can touch recurrent connections except the width-scaling
//! pair FjORD/HeteroFL; none can drop output-vocabulary rows). They all
//! aggregate holders-only (each parameter averaged over the clients that
//! trained it), which is the aggregation those papers define.

mod afd;
mod fedavg;
mod feddrop;
mod fedmp;
mod fjord;
mod heterofl;

pub use afd::Afd;
pub use fedavg::FedAvg;
pub use feddrop::FedDrop;
pub use fedmp::FedMp;
pub use fjord::Fjord;
pub use heterofl::HeteroFl;

use crate::combo;
use fedbiad_compress::{ClientState as SketchState, Compressor};
use fedbiad_data::ClientData;
use fedbiad_fl::algorithm::{LocalResult, RoundInfo, TrainConfig};
use fedbiad_fl::client::{run_local_training, LocalHooks, LocalRunId};
use fedbiad_fl::upload::{Upload, UploadBody, UploadKind};
use fedbiad_nn::{Model, ModelMask, ParamSet};
use fedbiad_tensor::rng::{stream, StreamTag};

/// Hooks that keep gradients inside a fixed coverage mask.
pub(crate) struct MaskHooks<'a> {
    pub mask: &'a ModelMask,
}

impl LocalHooks for MaskHooks<'_> {
    fn mask_grads(&mut self, _v: usize, grads: &mut ParamSet) {
        self.mask.apply(grads);
    }
}

/// Shared client skeleton for the dropout baselines: mask the received
/// global, train the sub-model, upload it (optionally sketch-compressed).
#[allow(clippy::too_many_arguments)]
pub(crate) fn masked_local_update(
    info: RoundInfo,
    client_id: usize,
    global: &ParamSet,
    data: &ClientData,
    model: &dyn Model,
    cfg: &TrainConfig,
    mask: ModelMask,
    sketch: Option<&dyn Compressor>,
    sketch_state: &mut SketchState,
) -> LocalResult {
    let mut u = global.clone();
    mask.apply(&mut u);
    let id = LocalRunId {
        seed: info.seed,
        round: info.round,
        client: client_id,
    };
    let stats = run_local_training(id, model, data, cfg, &mut u, &mut MaskHooks { mask: &mask });

    let upload = match sketch {
        None => Upload::masked_weights_with(u, mask, info.agg),
        Some(comp) => {
            let mut masked_u = u;
            mask.apply(&mut masked_u);
            let mut crng = stream(
                info.seed,
                StreamTag::Compress,
                info.round as u64,
                client_id as u64,
            );
            let out = combo::sketch_masked_weights(
                comp,
                sketch_state,
                &masked_u,
                global,
                &mask,
                info.round,
                &mut crng,
                !info.agg.streaming,
            );
            let overhead = mask.wire_bytes(&masked_u) - mask.kept_params(&masked_u) as u64 * 4;
            let wire_bytes = out.payload_bytes + overhead;
            if info.agg.streaming {
                // Streaming: mask bitmaps + compressed payload travel as
                // real bytes; no dense reconstruction anywhere.
                let msg = fedbiad_compress::codec::encode_weights_delta(&mask, &out.payload);
                debug_assert_eq!(msg.body_bytes(), wire_bytes);
                Upload::wire(UploadKind::Weights, msg, mask, wire_bytes)
            } else {
                Upload {
                    kind: UploadKind::Weights,
                    body: UploadBody::Dense(out.reconstructed.expect("dense reference path")),
                    coverage: mask,
                    wire_bytes,
                }
            }
        }
    };

    LocalResult {
        upload,
        train_loss: stats.mean_loss,
        loss_improvement: stats.improvement(),
        local_seconds: stats.seconds,
        num_samples: data.num_samples(),
    }
}

/// Round `rate · count` with a floor of 0 and ceiling `count − 1` (always
/// keep at least one unit per group).
pub(crate) fn units_to_drop(count: usize, rate: f32) -> usize {
    (((count as f64) * rate as f64).round() as usize).min(count.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_to_drop_rounds_and_clamps() {
        assert_eq!(units_to_drop(10, 0.2), 2);
        assert_eq!(units_to_drop(10, 0.55), 6);
        assert_eq!(units_to_drop(1, 0.9), 0);
        assert_eq!(units_to_drop(3, 0.99), 2);
    }
}
