//! FedAvg [1]: the uncompressed FL baseline — and, with a sketch attached,
//! the pure sketched-compression methods of Table II (FedPAQ, signSGD,
//! STC, DGC), which compress the full-model *delta* with no dropout.

use fedbiad_compress::codec::encode_delta;
use fedbiad_compress::{ClientState as SketchState, Compressor};
use fedbiad_data::ClientData;
use fedbiad_fl::aggregate::{aggregate_deltas, aggregate_weights, ZeroMode};
use fedbiad_fl::algorithm::{FlAlgorithm, LocalResult, RoundInfo, TrainConfig};
use fedbiad_fl::client::{run_local_training, LocalRunId, NoHooks};
use fedbiad_fl::upload::{Upload, UploadBody, UploadKind};
use fedbiad_nn::{Model, ModelMask, ParamSet};
use fedbiad_tensor::rng::{stream, StreamTag};
use std::sync::Arc;

/// FedAvg, optionally with a sketched delta compressor.
pub struct FedAvg {
    sketch: Option<Arc<dyn Compressor>>,
}

impl FedAvg {
    /// Plain FedAvg (full-model uploads).
    pub fn new() -> Self {
        Self { sketch: None }
    }

    /// FedAvg + sketched compression of the model delta — this is how the
    /// paper's Table II runs FedPAQ / signSGD / STC / DGC.
    pub fn with_sketch(comp: Arc<dyn Compressor>) -> Self {
        Self { sketch: Some(comp) }
    }
}

impl Default for FedAvg {
    fn default() -> Self {
        Self::new()
    }
}

impl FlAlgorithm for FedAvg {
    type ClientState = SketchState;
    type RoundCtx = ();

    fn name(&self) -> String {
        match &self.sketch {
            Some(c) => c.name().to_string(),
            None => "fedavg".into(),
        }
    }

    fn init_client_state(&self, _: usize, _: &dyn Model, _: &ParamSet) -> SketchState {
        SketchState::default()
    }

    fn begin_round(&mut self, _: RoundInfo, _: &ParamSet) {}

    fn local_update(
        &self,
        info: RoundInfo,
        _rctx: &(),
        client_id: usize,
        state: &mut SketchState,
        global: &ParamSet,
        data: &ClientData,
        model: &dyn Model,
        cfg: &TrainConfig,
    ) -> LocalResult {
        let mut u = global.clone();
        let id = LocalRunId {
            seed: info.seed,
            round: info.round,
            client: client_id,
        };
        let stats = run_local_training(id, model, data, cfg, &mut u, &mut NoHooks);

        let upload = match &self.sketch {
            None => Upload::full_weights_with(u, info.agg),
            Some(comp) => {
                // Delta = trained − received, compressed with residual
                // feedback; the server receives the decoded delta.
                let fu = u.flatten();
                let fg = global.flatten();
                let delta: Vec<f32> = fu.iter().zip(&fg).map(|(a, b)| a - b).collect();
                let mut crng = stream(
                    info.seed,
                    StreamTag::Compress,
                    info.round as u64,
                    client_id as u64,
                );
                let compressed = comp.compress(state, &delta, info.round, &mut crng);
                if info.agg.streaming {
                    // Streaming: ship the real encoded payload; the server
                    // decodes it shard by shard and never holds a dense
                    // per-client delta (the compressor's own transient
                    // `decoded` scratch is freed right here).
                    let msg = encode_delta(&compressed.payload);
                    debug_assert_eq!(msg.body_bytes(), compressed.wire_bytes);
                    Upload::wire(
                        UploadKind::Delta,
                        msg,
                        ModelMask::full(global),
                        compressed.wire_bytes,
                    )
                } else {
                    let mut dparams = global.zeros_like();
                    dparams.unflatten_from(&compressed.decoded);
                    Upload {
                        kind: UploadKind::Delta,
                        coverage: ModelMask::full(global),
                        wire_bytes: compressed.wire_bytes,
                        body: UploadBody::Dense(dparams),
                    }
                }
            }
        };

        LocalResult {
            upload,
            train_loss: stats.mean_loss,
            loss_improvement: stats.improvement(),
            local_seconds: stats.seconds,
            num_samples: data.num_samples(),
        }
    }

    fn aggregate(
        &mut self,
        info: RoundInfo,
        _rctx: &(),
        global: &mut ParamSet,
        results: &[(usize, LocalResult)],
    ) {
        let ups: Vec<(f32, &Upload)> = results
            .iter()
            .map(|(_, r)| (r.num_samples as f32, &r.upload))
            .collect();
        match self.sketch {
            None => aggregate_weights(global, &ups, ZeroMode::HoldersOnly, info.agg),
            Some(_) => aggregate_deltas(global, &ups, info.agg),
        }
        .expect("aggregation failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_compress::fedpaq::FedPaq;
    use fedbiad_data::dataset::ImageSet;

    fn setup() -> (fedbiad_nn::mlp::MlpModel, ParamSet, ClientData) {
        let model = fedbiad_nn::mlp::MlpModel::new(4, 6, 2);
        let global = model.init_params(&mut stream(1, StreamTag::Init, 0, 0));
        let mut set = ImageSet::empty(4);
        for i in 0..40 {
            let c = i % 2;
            let f = if c == 0 {
                [1.0, 1.0, 0.0, 0.0]
            } else {
                [0.0, 0.0, 1.0, 1.0]
            };
            set.push(&f, c as u32);
        }
        (model, global, ClientData::Image(set))
    }

    #[test]
    fn plain_fedavg_uploads_full_model() {
        let (model, global, data) = setup();
        let algo = FedAvg::new();
        let mut st = algo.init_client_state(0, &model, &global);
        let info = RoundInfo {
            round: 0,
            total_rounds: 5,
            seed: 2,
            agg: Default::default(),
        };
        let cfg = TrainConfig {
            local_iters: 3,
            batch_size: 8,
            lr: 0.1,
            ..Default::default()
        };
        let res = algo.local_update(info, &(), 0, &mut st, &global, &data, &model, &cfg);
        assert_eq!(res.upload.wire_bytes, global.total_bytes());
        assert_eq!(res.upload.kind, UploadKind::Weights);
    }

    #[test]
    fn sketched_fedavg_uploads_quantized_delta() {
        let (model, global, data) = setup();
        let algo = FedAvg::with_sketch(Arc::new(FedPaq::paper()));
        let mut st = algo.init_client_state(0, &model, &global);
        let info = RoundInfo {
            round: 0,
            total_rounds: 5,
            seed: 2,
            agg: Default::default(),
        };
        let cfg = TrainConfig {
            local_iters: 3,
            batch_size: 8,
            lr: 0.1,
            ..Default::default()
        };
        let res = algo.local_update(info, &(), 0, &mut st, &global, &data, &model, &cfg);
        assert_eq!(res.upload.kind, UploadKind::Delta);
        // ≈4× smaller than the dense model.
        let ratio = global.total_bytes() as f64 / res.upload.wire_bytes as f64;
        assert!(ratio > 3.5 && ratio < 4.5, "{ratio}");
        assert_eq!(algo.name(), "fedpaq");
    }

    #[test]
    fn sketched_aggregation_applies_delta() {
        let (model, global, data) = setup();
        let mut algo = FedAvg::with_sketch(Arc::new(FedPaq::paper()));
        let mut st = algo.init_client_state(0, &model, &global);
        let info = RoundInfo {
            round: 0,
            total_rounds: 5,
            seed: 3,
            agg: Default::default(),
        };
        let cfg = TrainConfig {
            local_iters: 5,
            batch_size: 8,
            lr: 0.2,
            ..Default::default()
        };
        let res = algo.local_update(info, &(), 0, &mut st, &global, &data, &model, &cfg);
        let mut g = global.clone();
        algo.aggregate(info, &(), &mut g, &[(0, res)]);
        // Global must have moved.
        assert_ne!(g.flatten(), global.flatten());
    }
}
