//! HeteroFL [43]: heterogeneous-capacity federated learning.
//!
//! Clients are assigned *static* width classes ("different clients could
//! adopt different shrinkage ratios", paper §V-A): client k always trains
//! the leading sub-network of its class's width. Aggregation is
//! holders-only over the nested sub-matrices, exactly as in the HeteroFL
//! paper.

use super::{masked_local_update, units_to_drop};
use crate::neuron::{derive_groups, mask_from_dropped_units, NeuronGroup};
use fedbiad_compress::{ClientState as SketchState, Compressor};
use fedbiad_data::ClientData;
use fedbiad_fl::aggregate::{aggregate_weights, ZeroMode};
use fedbiad_fl::algorithm::{FlAlgorithm, LocalResult, RoundInfo, TrainConfig};
use fedbiad_fl::upload::Upload;
use fedbiad_nn::{Model, ParamSet};
use std::sync::Arc;

/// Static per-client width shrinking.
pub struct HeteroFl {
    /// Width ladder; client k uses `ladder[k % ladder.len()]`.
    ladder: Vec<f32>,
    sketch: Option<Arc<dyn Compressor>>,
}

impl HeteroFl {
    /// Ladder derived from dropout rate p: {1−p, √(1−p), 1}.
    pub fn new(rate: f32) -> Self {
        assert!((0.0..1.0).contains(&rate));
        Self {
            ladder: vec![1.0 - rate, (1.0 - rate).sqrt(), 1.0],
            sketch: None,
        }
    }

    /// HeteroFL with a sketched compressor.
    pub fn with_sketch(rate: f32, comp: Arc<dyn Compressor>) -> Self {
        Self {
            sketch: Some(comp),
            ..Self::new(rate)
        }
    }

    /// The static width class of `client_id`.
    pub fn width_of(&self, client_id: usize) -> f32 {
        self.ladder[client_id % self.ladder.len()]
    }

    fn drops(groups: &[NeuronGroup], width: f32) -> Vec<(&NeuronGroup, Vec<usize>)> {
        groups
            .iter()
            .map(|g| {
                let n_drop = units_to_drop(g.count, 1.0 - width);
                ((g), (g.count - n_drop..g.count).collect::<Vec<_>>())
            })
            .filter(|(_, d)| !d.is_empty())
            .collect()
    }
}

impl FlAlgorithm for HeteroFl {
    type ClientState = SketchState;
    type RoundCtx = ();

    fn name(&self) -> String {
        match &self.sketch {
            Some(c) => format!("heterofl+{}", c.name()),
            None => "heterofl".into(),
        }
    }

    fn init_client_state(&self, _: usize, _: &dyn Model, _: &ParamSet) -> SketchState {
        SketchState::default()
    }

    fn begin_round(&mut self, _: RoundInfo, _: &ParamSet) {}

    fn local_update(
        &self,
        info: RoundInfo,
        _rctx: &(),
        client_id: usize,
        state: &mut SketchState,
        global: &ParamSet,
        data: &ClientData,
        model: &dyn Model,
        cfg: &TrainConfig,
    ) -> LocalResult {
        let width = self.width_of(client_id);
        let groups = derive_groups(global);
        let drops = Self::drops(&groups, width);
        let mask = mask_from_dropped_units(global, &drops);
        masked_local_update(
            info,
            client_id,
            global,
            data,
            model,
            cfg,
            mask,
            self.sketch.as_deref(),
            state,
        )
    }

    fn aggregate(
        &mut self,
        info: RoundInfo,
        _rctx: &(),
        global: &mut ParamSet,
        results: &[(usize, LocalResult)],
    ) {
        let ups: Vec<(f32, &Upload)> = results
            .iter()
            .map(|(_, r)| (r.num_samples as f32, &r.upload))
            .collect();
        aggregate_weights(global, &ups, ZeroMode::HoldersOnly, info.agg)
            .expect("aggregation failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_data::dataset::ImageSet;
    use fedbiad_nn::mlp::MlpModel;
    use fedbiad_tensor::rng::{stream, StreamTag};

    #[test]
    fn width_classes_are_static_per_client() {
        let algo = HeteroFl::new(0.5);
        assert_eq!(algo.width_of(0), algo.width_of(3));
        assert_ne!(algo.width_of(0), algo.width_of(1));
        // One class trains the full model.
        assert!(algo.ladder.contains(&1.0));
    }

    #[test]
    fn upload_size_is_monotone_in_width_class() {
        let model = MlpModel::new(4, 12, 2);
        let global = model.init_params(&mut stream(1, StreamTag::Init, 0, 0));
        let mut set = ImageSet::empty(4);
        for i in 0..16 {
            set.push(&[0.5; 4], (i % 2) as u32);
        }
        let data = ClientData::Image(set);
        let cfg = TrainConfig {
            local_iters: 1,
            batch_size: 4,
            lr: 0.05,
            ..Default::default()
        };
        let algo = HeteroFl::new(0.5);
        let info = RoundInfo {
            round: 0,
            total_rounds: 5,
            seed: 6,
            agg: Default::default(),
        };
        let mut bytes = Vec::new();
        for client in 0..3usize {
            let mut st = SketchState::default();
            let res = algo.local_update(info, &(), client, &mut st, &global, &data, &model, &cfg);
            bytes.push((algo.width_of(client), res.upload.wire_bytes));
        }
        bytes.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert!(
            bytes[0].1 < bytes[1].1 && bytes[1].1 < bytes[2].1,
            "{bytes:?}"
        );
    }
}
