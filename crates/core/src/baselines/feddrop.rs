//! FedDrop [12] (Caldas et al.): random federated dropout.
//!
//! Each client independently drops a fixed fraction of *neurons* per round,
//! chosen uniformly at random, on convolutional/fully-connected structure
//! only — "does not extend to recurrent layers" (paper §V-A). For the LSTM
//! language model this means the embedding-dimension units; the recurrent
//! W_x/W_h matrices and the vocabulary rows travel in full, which is why
//! FedDrop's save ratio on PTB-scale models caps near 1.25× while FedBIAD
//! reaches 2× (Table I).

use super::{masked_local_update, units_to_drop};
use crate::neuron::{derive_groups, mask_from_dropped_units, NeuronGroup};
use fedbiad_compress::{ClientState as SketchState, Compressor};
use fedbiad_data::ClientData;
use fedbiad_fl::aggregate::{aggregate_weights, ZeroMode};
use fedbiad_fl::algorithm::{FlAlgorithm, LocalResult, RoundInfo, TrainConfig};
use fedbiad_fl::upload::Upload;
use fedbiad_nn::{Model, ParamSet};
use fedbiad_tensor::rng::{stream, StreamTag};
use rand::seq::SliceRandom;
use std::sync::Arc;

/// Random neuron dropout at a fixed rate.
pub struct FedDrop {
    rate: f32,
    sketch: Option<Arc<dyn Compressor>>,
}

impl FedDrop {
    /// Plain FedDrop at dropout rate `rate`.
    pub fn new(rate: f32) -> Self {
        assert!((0.0..1.0).contains(&rate));
        Self { rate, sketch: None }
    }

    /// FedDrop combined with a sketched compressor.
    pub fn with_sketch(rate: f32, comp: Arc<dyn Compressor>) -> Self {
        Self {
            sketch: Some(comp),
            ..Self::new(rate)
        }
    }

    /// Random per-client drop sets over the non-recurrent groups.
    fn sample_drops<'g>(
        &self,
        groups: &'g [NeuronGroup],
        info: RoundInfo,
        client_id: usize,
    ) -> Vec<(&'g NeuronGroup, Vec<usize>)> {
        let mut rng = stream(
            info.seed,
            StreamTag::Baseline,
            info.round as u64,
            client_id as u64,
        );
        groups
            .iter()
            .filter(|g| !g.recurrent)
            .map(|g| {
                let n_drop = units_to_drop(g.count, self.rate);
                let mut ids: Vec<usize> = (0..g.count).collect();
                ids.shuffle(&mut rng);
                ids.truncate(n_drop);
                (g, ids)
            })
            .collect()
    }
}

impl FlAlgorithm for FedDrop {
    type ClientState = SketchState;
    type RoundCtx = ();

    fn name(&self) -> String {
        match &self.sketch {
            Some(c) => format!("feddrop+{}", c.name()),
            None => "feddrop".into(),
        }
    }

    fn init_client_state(&self, _: usize, _: &dyn Model, _: &ParamSet) -> SketchState {
        SketchState::default()
    }

    fn begin_round(&mut self, _: RoundInfo, _: &ParamSet) {}

    fn local_update(
        &self,
        info: RoundInfo,
        _rctx: &(),
        client_id: usize,
        state: &mut SketchState,
        global: &ParamSet,
        data: &ClientData,
        model: &dyn Model,
        cfg: &TrainConfig,
    ) -> LocalResult {
        let groups = derive_groups(global);
        let drops = self.sample_drops(&groups, info, client_id);
        let mask = mask_from_dropped_units(global, &drops);
        masked_local_update(
            info,
            client_id,
            global,
            data,
            model,
            cfg,
            mask,
            self.sketch.as_deref(),
            state,
        )
    }

    fn aggregate(
        &mut self,
        info: RoundInfo,
        _rctx: &(),
        global: &mut ParamSet,
        results: &[(usize, LocalResult)],
    ) {
        let ups: Vec<(f32, &Upload)> = results
            .iter()
            .map(|(_, r)| (r.num_samples as f32, &r.upload))
            .collect();
        aggregate_weights(global, &ups, ZeroMode::HoldersOnly, info.agg)
            .expect("aggregation failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_data::dataset::ImageSet;
    use fedbiad_nn::lstm_lm::LstmLmModel;
    use fedbiad_nn::mlp::MlpModel;

    fn image_client() -> ClientData {
        let mut set = ImageSet::empty(4);
        for i in 0..30 {
            set.push(&[0.2, 0.8, 0.5, 0.1], (i % 2) as u32);
        }
        ClientData::Image(set)
    }

    #[test]
    fn mlp_upload_shrinks_with_rate() {
        let model = MlpModel::new(4, 10, 2);
        let global = model.init_params(&mut stream(1, StreamTag::Init, 0, 0));
        let data = image_client();
        let cfg = TrainConfig {
            local_iters: 2,
            batch_size: 8,
            lr: 0.1,
            ..Default::default()
        };
        let info = RoundInfo {
            round: 0,
            total_rounds: 5,
            seed: 4,
            agg: Default::default(),
        };
        let algo_lo = FedDrop::new(0.2);
        let algo_hi = FedDrop::new(0.5);
        let mut st = SketchState::default();
        let lo = algo_lo.local_update(info, &(), 0, &mut st, &global, &data, &model, &cfg);
        let hi = algo_hi.local_update(info, &(), 0, &mut st, &global, &data, &model, &cfg);
        assert!(hi.upload.wire_bytes < lo.upload.wire_bytes);
        assert!(lo.upload.wire_bytes < global.total_bytes());
    }

    #[test]
    fn recurrent_entries_never_dropped() {
        // On an LSTM LM, FedDrop may only touch the embedding dimension —
        // W_x / W_h / head coverage must stay Full on rows.
        let model = LstmLmModel::new(20, 8, 6, 1);
        let global = model.init_params(&mut stream(2, StreamTag::Init, 0, 0));
        let groups = derive_groups(&global);
        let algo = FedDrop::new(0.5);
        let info = RoundInfo {
            round: 3,
            total_rounds: 5,
            seed: 7,
            agg: Default::default(),
        };
        let drops = algo.sample_drops(&groups, info, 0);
        for (g, units) in &drops {
            assert!(!g.recurrent);
            assert!(!units.is_empty());
        }
        // Only the embdim group qualifies.
        assert_eq!(drops.len(), 1);
        assert!(drops[0].0.name.starts_with("embdim"));
    }

    #[test]
    fn different_clients_draw_different_drops() {
        let model = MlpModel::new(4, 32, 2);
        let global = model.init_params(&mut stream(3, StreamTag::Init, 0, 0));
        let groups = derive_groups(&global);
        let algo = FedDrop::new(0.5);
        let info = RoundInfo {
            round: 0,
            total_rounds: 5,
            seed: 4,
            agg: Default::default(),
        };
        let a = algo.sample_drops(&groups, info, 0);
        let b = algo.sample_drops(&groups, info, 1);
        assert_ne!(a[0].1, b[0].1);
    }
}
