//! FjORD [14]: ordered dropout.
//!
//! Each client trains a *leading* sub-network: the first ⌈w·count⌉ units
//! of every width group (including recurrent hidden widths — ordered
//! dropout shrinks every layer, which is why FjORD compresses LSTMs more
//! than FedDrop/AFD but still cannot touch vocabulary rows). The width
//! multiplier w is sampled per client per round from a discrete ladder, as
//! in FjORD's uniform sub-model distribution; "the left-most neurons are
//! used by more clients during training" (paper §V-A).

use super::{masked_local_update, units_to_drop};
use crate::neuron::{derive_groups, mask_from_dropped_units, NeuronGroup};
use fedbiad_compress::{ClientState as SketchState, Compressor};
use fedbiad_data::ClientData;
use fedbiad_fl::aggregate::{aggregate_weights, ZeroMode};
use fedbiad_fl::algorithm::{FlAlgorithm, LocalResult, RoundInfo, TrainConfig};
use fedbiad_fl::upload::Upload;
use fedbiad_nn::{Model, ParamSet};
use fedbiad_tensor::rng::{stream, StreamTag};
use rand::Rng;
use std::sync::Arc;

/// Ordered (leading-prefix) dropout.
pub struct Fjord {
    /// Width-multiplier ladder clients sample from.
    ladder: Vec<f32>,
    sketch: Option<Arc<dyn Compressor>>,
}

impl Fjord {
    /// Ladder derived from dropout rate p: {1−p, 1−p/2, 1} (uniform).
    pub fn new(rate: f32) -> Self {
        assert!((0.0..1.0).contains(&rate));
        Self {
            ladder: vec![1.0 - rate, 1.0 - rate / 2.0, 1.0],
            sketch: None,
        }
    }

    /// FjORD with a sketched compressor (Table II "Fjord+DGC").
    pub fn with_sketch(rate: f32, comp: Arc<dyn Compressor>) -> Self {
        Self {
            sketch: Some(comp),
            ..Self::new(rate)
        }
    }

    /// Trailing units dropped by a client at width `w`.
    fn ordered_drops(groups: &[NeuronGroup], width: f32) -> Vec<(&NeuronGroup, Vec<usize>)> {
        groups
            .iter()
            .map(|g| {
                let n_drop = units_to_drop(g.count, 1.0 - width);
                let dropped: Vec<usize> = (g.count - n_drop..g.count).collect();
                (g, dropped)
            })
            .filter(|(_, d)| !d.is_empty())
            .collect()
    }
}

impl FlAlgorithm for Fjord {
    type ClientState = SketchState;
    type RoundCtx = ();

    fn name(&self) -> String {
        match &self.sketch {
            Some(c) => format!("fjord+{}", c.name()),
            None => "fjord".into(),
        }
    }

    fn init_client_state(&self, _: usize, _: &dyn Model, _: &ParamSet) -> SketchState {
        SketchState::default()
    }

    fn begin_round(&mut self, _: RoundInfo, _: &ParamSet) {}

    fn local_update(
        &self,
        info: RoundInfo,
        _rctx: &(),
        client_id: usize,
        state: &mut SketchState,
        global: &ParamSet,
        data: &ClientData,
        model: &dyn Model,
        cfg: &TrainConfig,
    ) -> LocalResult {
        let mut rng = stream(
            info.seed,
            StreamTag::Baseline,
            info.round as u64,
            client_id as u64,
        );
        let width = self.ladder[rng.gen_range(0..self.ladder.len())];
        let groups = derive_groups(global);
        let drops = Self::ordered_drops(&groups, width);
        let mask = mask_from_dropped_units(global, &drops);
        masked_local_update(
            info,
            client_id,
            global,
            data,
            model,
            cfg,
            mask,
            self.sketch.as_deref(),
            state,
        )
    }

    fn aggregate(
        &mut self,
        info: RoundInfo,
        _rctx: &(),
        global: &mut ParamSet,
        results: &[(usize, LocalResult)],
    ) {
        let ups: Vec<(f32, &Upload)> = results
            .iter()
            .map(|(_, r)| (r.num_samples as f32, &r.upload))
            .collect();
        aggregate_weights(global, &ups, ZeroMode::HoldersOnly, info.agg)
            .expect("aggregation failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_nn::mlp::MlpModel;

    #[test]
    fn drops_are_trailing_units() {
        let model = MlpModel::new(4, 10, 2);
        let global = model.init_params(&mut stream(1, StreamTag::Init, 0, 0));
        let groups = derive_groups(&global);
        let drops = Fjord::ordered_drops(&groups, 0.5);
        assert_eq!(drops[0].1, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn full_width_drops_nothing() {
        let model = MlpModel::new(4, 10, 2);
        let global = model.init_params(&mut stream(2, StreamTag::Init, 0, 0));
        let groups = derive_groups(&global);
        assert!(Fjord::ordered_drops(&groups, 1.0).is_empty());
    }

    #[test]
    fn ladder_spans_widths_and_is_deterministic_per_client() {
        use fedbiad_data::dataset::ImageSet;
        let model = MlpModel::new(4, 16, 2);
        let global = model.init_params(&mut stream(3, StreamTag::Init, 0, 0));
        let mut set = ImageSet::empty(4);
        for i in 0..20 {
            set.push(&[0.5; 4], (i % 2) as u32);
        }
        let data = ClientData::Image(set);
        let cfg = TrainConfig {
            local_iters: 1,
            batch_size: 4,
            lr: 0.05,
            ..Default::default()
        };
        let algo = Fjord::new(0.5);
        let info = RoundInfo {
            round: 0,
            total_rounds: 5,
            seed: 6,
            agg: Default::default(),
        };
        let mut seen = std::collections::BTreeSet::new();
        for client in 0..12usize {
            let mut st = SketchState::default();
            let res = algo.local_update(info, &(), client, &mut st, &global, &data, &model, &cfg);
            seen.insert(res.upload.wire_bytes);
        }
        // At least two distinct widths appear across 12 clients.
        assert!(seen.len() >= 2, "{seen:?}");
        // Mean upload below the full model.
        assert!(*seen.iter().max().unwrap() <= global.total_bytes());
    }
}
