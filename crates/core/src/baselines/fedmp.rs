//! FedMP [27]: federated learning through adaptive model pruning.
//!
//! Each client prunes the weights with the lowest absolute values
//! ("FedMP assumes that small weights have a weak effect on model
//! accuracy", paper §V-A) at rate p, trains the sparse model and uploads
//! only the surviving weights plus a 1-bit/element position bitmap.
//! Pruning applies to dense (non-recurrent, non-embedding) matrices —
//! magnitude pruning of recurrent and embedding structure is outside the
//! method's published scope.

use super::masked_local_update;
use fedbiad_compress::{ClientState as SketchState, Compressor};
use fedbiad_data::ClientData;
use fedbiad_fl::aggregate::{aggregate_weights, ZeroMode};
use fedbiad_fl::algorithm::{FlAlgorithm, LocalResult, RoundInfo, TrainConfig};
use fedbiad_fl::upload::Upload;
use fedbiad_nn::mask::{BitVec, CoverageMask, ModelMask};
use fedbiad_nn::params::LayerKind;
use fedbiad_nn::{Model, ParamSet};
use fedbiad_tensor::stats;
use std::sync::Arc;

/// Magnitude pruning at a fixed rate.
pub struct FedMp {
    rate: f32,
    sketch: Option<Arc<dyn Compressor>>,
}

impl FedMp {
    /// Plain FedMP at pruning rate `rate`.
    pub fn new(rate: f32) -> Self {
        assert!((0.0..1.0).contains(&rate));
        Self { rate, sketch: None }
    }

    /// FedMP with a sketched compressor.
    pub fn with_sketch(rate: f32, comp: Arc<dyn Compressor>) -> Self {
        Self {
            sketch: Some(comp),
            ..Self::new(rate)
        }
    }

    /// Is entry `e` prunable under FedMP's published scope?
    fn prunable(kind: LayerKind) -> bool {
        matches!(kind, LayerKind::DenseHidden | LayerKind::DenseOutput)
    }

    /// Element mask keeping the top-(1−p) |weights| of each prunable entry.
    pub fn prune_mask(&self, global: &ParamSet) -> ModelMask {
        let per_entry = (0..global.num_entries())
            .map(|e| {
                if !Self::prunable(global.meta(e).kind) {
                    return CoverageMask::Full;
                }
                let w = global.mat(e).as_slice();
                let keep = ((w.len() as f64 * (1.0 - self.rate) as f64).round() as usize)
                    .clamp(1, w.len());
                let top = stats::top_k_abs_indices(w, keep);
                let mut bits = BitVec::new(w.len(), false);
                for &i in &top {
                    bits.set(i, true);
                }
                CoverageMask::Elements(bits)
            })
            .collect();
        ModelMask { per_entry }
    }
}

impl FlAlgorithm for FedMp {
    type ClientState = SketchState;
    type RoundCtx = ();

    fn name(&self) -> String {
        match &self.sketch {
            Some(c) => format!("fedmp+{}", c.name()),
            None => "fedmp".into(),
        }
    }

    fn init_client_state(&self, _: usize, _: &dyn Model, _: &ParamSet) -> SketchState {
        SketchState::default()
    }

    fn begin_round(&mut self, _: RoundInfo, _: &ParamSet) {}

    fn local_update(
        &self,
        info: RoundInfo,
        _rctx: &(),
        client_id: usize,
        state: &mut SketchState,
        global: &ParamSet,
        data: &ClientData,
        model: &dyn Model,
        cfg: &TrainConfig,
    ) -> LocalResult {
        // Magnitudes are taken from the received global — all clients of a
        // round share them, but the mask recomputes every round as weights
        // evolve ("adaptive" pruning).
        let mask = self.prune_mask(global);
        masked_local_update(
            info,
            client_id,
            global,
            data,
            model,
            cfg,
            mask,
            self.sketch.as_deref(),
            state,
        )
    }

    fn aggregate(
        &mut self,
        info: RoundInfo,
        _rctx: &(),
        global: &mut ParamSet,
        results: &[(usize, LocalResult)],
    ) {
        let ups: Vec<(f32, &Upload)> = results
            .iter()
            .map(|(_, r)| (r.num_samples as f32, &r.upload))
            .collect();
        aggregate_weights(global, &ups, ZeroMode::HoldersOnly, info.agg)
            .expect("aggregation failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_nn::lstm_lm::LstmLmModel;
    use fedbiad_nn::mlp::MlpModel;
    use fedbiad_tensor::rng::{stream, StreamTag};

    #[test]
    fn prune_mask_keeps_largest_magnitudes() {
        let model = MlpModel::new(3, 4, 2);
        let mut global = model.init_params(&mut stream(1, StreamTag::Init, 0, 0));
        global.mat_mut(0).fill(0.01);
        global.mat_mut(0).set(0, 0, 5.0);
        global.mat_mut(0).set(2, 1, -4.0);
        let algo = FedMp::new(0.8);
        let mask = algo.prune_mask(&global);
        match &mask.per_entry[0] {
            CoverageMask::Elements(bits) => {
                assert!(bits.get(0)); // (0,0)
                assert!(bits.get(2 * 3 + 1)); // (2,1)
                                              // Keeps ⌈20%⌉ of 12 = 2… round(12·0.2)=2.
                assert_eq!(bits.count_ones(), 2);
            }
            other => panic!("want Elements, got {other:?}"),
        }
    }

    #[test]
    fn embedding_and_recurrent_are_not_pruned() {
        let model = LstmLmModel::new(15, 6, 5, 1);
        let global = model.init_params(&mut stream(2, StreamTag::Init, 0, 0));
        let algo = FedMp::new(0.5);
        let mask = algo.prune_mask(&global);
        // emb (0), wx (1), wh (2) stay Full; head (3) gets Elements.
        assert_eq!(mask.per_entry[0], CoverageMask::Full);
        assert_eq!(mask.per_entry[1], CoverageMask::Full);
        assert_eq!(mask.per_entry[2], CoverageMask::Full);
        assert!(matches!(mask.per_entry[3], CoverageMask::Elements(_)));
    }

    #[test]
    fn wire_bytes_include_position_bitmap() {
        let model = MlpModel::new(8, 16, 4);
        let global = model.init_params(&mut stream(3, StreamTag::Init, 0, 0));
        let algo = FedMp::new(0.5);
        let mask = algo.prune_mask(&global);
        let bytes = mask.wire_bytes(&global);
        let kept = mask.kept_params(&global) as u64;
        // weights + biases kept at 4B each, plus ⌈n/8⌉ bitmap per entry.
        let bitmap: u64 = (0..global.num_entries())
            .map(|e| (global.mat(e).len() as u64).div_ceil(8))
            .sum();
        assert_eq!(bytes, kept * 4 + bitmap);
        assert!(bytes < global.total_bytes());
    }
}
