//! Experience-based importance indicator (paper §IV-D, eq. (9)).
//!
//! Each client accumulates a weight score vector E^k over the J row units.
//! At every iteration, rows the client currently *holds* gain score:
//! unconditionally when the loss trend is favourable (ΔL ≤ 0), and only if
//! they survive into the next pattern when the trend is bad (ΔL > 0,
//! e_j = 1 iff β^{k,v+1}_j = 1). After the stage boundary R_b, the scores
//! pick the dropping pattern directly (keep the top-(1−p) quantile).

use crate::pattern::DropPattern;
use serde::{Deserialize, Serialize};

/// Per-client weight score vector E^k.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WeightScores {
    /// Score per row unit.
    pub e: Vec<f32>,
}

impl WeightScores {
    /// Zero-initialised scores over J row units.
    pub fn new(j: usize) -> Self {
        Self { e: vec![0.0; j] }
    }

    /// Number of row units.
    pub fn len(&self) -> usize {
        self.e.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.e.is_empty()
    }

    /// Eq. (9) for one iteration. `held` is the pattern the row was trained
    /// under at iteration v; `next` is the pattern for v+1 (same as `held`
    /// unless the trend was bad and the client re-sampled);
    /// `favourable` = (ΔL ≤ 0 at the last checkpoint, or no checkpoint yet).
    pub fn update(&mut self, held: &DropPattern, next: &DropPattern, favourable: bool) {
        debug_assert_eq!(held.len(), self.e.len());
        debug_assert_eq!(next.len(), self.e.len());
        for j in 0..self.e.len() {
            if held.is_kept(j) {
                if favourable {
                    self.e[j] += 1.0;
                } else if next.is_kept(j) {
                    // e_j = 1 iff the row survives into the next pattern.
                    self.e[j] += 1.0;
                }
            }
        }
    }

    /// Stage-two pattern: keep the `keep` best-scoring rows (the paper's
    /// p-quantile threshold λ with deterministic ties).
    pub fn to_pattern(&self, keep: usize) -> DropPattern {
        DropPattern::from_scores(&self.e, keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_nn::mask::BitVec;

    fn pattern(bits: &[bool]) -> DropPattern {
        let mut b = BitVec::new(bits.len(), false);
        for (i, &v) in bits.iter().enumerate() {
            b.set(i, v);
        }
        DropPattern { beta: b }
    }

    #[test]
    fn favourable_trend_bumps_all_held_rows() {
        let mut s = WeightScores::new(4);
        let held = pattern(&[true, true, false, false]);
        s.update(&held, &held, true);
        assert_eq!(s.e, vec![1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn bad_trend_bumps_only_survivors() {
        let mut s = WeightScores::new(4);
        let held = pattern(&[true, true, false, false]);
        let next = pattern(&[true, false, true, false]);
        s.update(&held, &next, false);
        // Row 0 held and survives (+1); row 1 held but dropped next (0);
        // row 2 not held at v (no credit even though kept next).
        assert_eq!(s.e, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn scores_accumulate_over_iterations() {
        let mut s = WeightScores::new(3);
        let a = pattern(&[true, false, true]);
        for _ in 0..5 {
            s.update(&a, &a, true);
        }
        assert_eq!(s.e, vec![5.0, 0.0, 5.0]);
    }

    #[test]
    fn to_pattern_selects_high_scores() {
        let mut s = WeightScores::new(5);
        s.e = vec![3.0, 9.0, 1.0, 7.0, 2.0];
        let p = s.to_pattern(2);
        assert!(p.is_kept(1) && p.is_kept(3));
        assert_eq!(p.kept(), 2);
    }
}
