//! Dropping patterns β ∈ Z_S^N (paper §III-C).
//!
//! A pattern is a binary vector over the J row units with exactly
//! `S_rows = ⌈(1−p)·J⌉` kept rows. Stage one samples patterns uniformly
//! from Z_S^N ([`DropPattern::sample_global`]); a per-entry quota sampler
//! ([`DropPattern::sample_per_entry`]) is provided for the ablation bench
//! (DESIGN.md §4.1). Stage two derives the pattern from the weight score
//! vector ([`DropPattern::from_scores`]): the rows above the p-quantile
//! threshold λ are kept — implemented as a deterministic top-S selection,
//! which equals the quantile rule up to tie-breaking.

use fedbiad_nn::mask::{BitVec, ModelMask};
use fedbiad_nn::ParamSet;
use fedbiad_tensor::stats;
use rand::Rng;

/// Number of kept rows for dropout rate `p` over `j` rows: ⌈(1−p)·J⌉,
/// clamped to [1, J].
pub fn keep_count(j: usize, p: f32) -> usize {
    assert!((0.0..1.0).contains(&p), "dropout rate must be in [0,1)");
    // Widen p to f64 *before* the subtraction so f32 representation error
    // (0.2f32 ≈ 0.20000000298) cannot push the ceil one row too high.
    let keep = (1.0 - p as f64) * j as f64;
    (keep.ceil() as usize).clamp(1, j)
}

/// A dropping pattern over the global row-unit space.
#[derive(Clone, Debug, PartialEq)]
pub struct DropPattern {
    /// β: bit j is `true` when row unit j is kept.
    pub beta: BitVec,
}

impl DropPattern {
    /// All rows kept (β = 1).
    pub fn full(j: usize) -> Self {
        Self {
            beta: BitVec::new(j, true),
        }
    }

    /// Number of kept rows.
    pub fn kept(&self) -> usize {
        self.beta.count_ones()
    }

    /// Row-unit count J.
    pub fn len(&self) -> usize {
        self.beta.len()
    }

    /// `true` when the pattern is empty (J = 0).
    pub fn is_empty(&self) -> bool {
        self.beta.is_empty()
    }

    /// Is row unit `j` kept?
    pub fn is_kept(&self, j: usize) -> bool {
        self.beta.get(j)
    }

    /// Uniform sample from Z_S^N: exactly `keep` of `j` rows kept
    /// (partial Fisher–Yates).
    pub fn sample_global(j: usize, keep: usize, rng: &mut impl Rng) -> Self {
        assert!(keep >= 1 && keep <= j, "keep out of range");
        let mut idx: Vec<usize> = (0..j).collect();
        for i in 0..keep {
            let pick = rng.gen_range(i..j);
            idx.swap(i, pick);
        }
        let mut beta = BitVec::new(j, false);
        for &r in &idx[..keep] {
            beta.set(r, true);
        }
        Self { beta }
    }

    /// Sample with forced-keep rows: all rows where `forced` is set are
    /// kept; the remaining `keep − |forced|` slots are drawn uniformly
    /// from the non-forced rows. Total kept = max(keep, |forced|).
    pub fn sample_global_forced(
        j: usize,
        keep: usize,
        forced: &BitVec,
        rng: &mut impl Rng,
    ) -> Self {
        assert_eq!(forced.len(), j);
        let n_forced = forced.count_ones();
        let free: Vec<usize> = (0..j).filter(|&r| !forced.get(r)).collect();
        let draw = keep.saturating_sub(n_forced).min(free.len());
        let mut idx = free;
        for i in 0..draw {
            let pick = rng.gen_range(i..idx.len());
            idx.swap(i, pick);
        }
        let mut beta = forced.clone();
        for &r in &idx[..draw] {
            beta.set(r, true);
        }
        Self { beta }
    }

    /// Per-entry quota sample: every droppable matrix independently keeps
    /// ⌈(1−p)·units⌉ of its row units (ablation alternative to the global
    /// quota).
    pub fn sample_per_entry(params: &ParamSet, p: f32, rng: &mut impl Rng) -> Self {
        let j = params.num_row_units();
        let mut beta = BitVec::new(j, false);
        for e in 0..params.num_entries() {
            if !params.meta(e).droppable {
                continue;
            }
            let units = params.entry_units(e);
            let keep = keep_count(units, p);
            let local = Self::sample_global(units, keep, rng);
            for u in 0..units {
                if local.is_kept(u) {
                    let gj = params.row_unit_index(e, u).expect("droppable");
                    beta.set(gj, true);
                }
            }
        }
        Self { beta }
    }

    /// Stage-two pattern from the weight score vector E^k: keep the `keep`
    /// highest-scoring rows (ties broken toward lower index). Equivalent to
    /// the paper's "score > λ (p-quantile of E^k)" rule with a
    /// deterministic tie-break that guarantees exactly S kept rows.
    pub fn from_scores(scores: &[f32], keep: usize) -> Self {
        let j = scores.len();
        assert!(keep >= 1 && keep <= j);
        let top = stats::top_k_indices(scores, keep);
        let mut beta = BitVec::new(j, false);
        for &r in &top {
            beta.set(r, true);
        }
        Self { beta }
    }

    /// [`DropPattern::from_scores`] with forced-keep rows: forced rows are
    /// always kept; the rest of the budget goes to the highest-scoring
    /// non-forced rows.
    pub fn from_scores_forced(scores: &[f32], keep: usize, forced: &BitVec) -> Self {
        let j = scores.len();
        assert_eq!(forced.len(), j);
        let n_forced = forced.count_ones();
        let mut beta = forced.clone();
        let budget = keep.saturating_sub(n_forced);
        if budget > 0 {
            // Rank non-forced rows only.
            let mut ranked: Vec<usize> = (0..j).filter(|&r| !forced.get(r)).collect();
            ranked.sort_by(|&a, &b| {
                scores[b]
                    .partial_cmp(&scores[a])
                    .expect("NaN score")
                    .then(a.cmp(&b))
            });
            for &r in ranked.iter().take(budget) {
                beta.set(r, true);
            }
        }
        Self { beta }
    }

    /// Translate to per-entry coverage for a [`ParamSet`].
    pub fn to_mask(&self, params: &ParamSet) -> ModelMask {
        ModelMask::from_row_pattern(params, &self.beta)
    }

    /// Zero the gradient rows of dropped units (eq. (7): only non-dropped
    /// rows update U).
    pub fn mask_grads(&self, grads: &mut ParamSet) {
        for j in 0..self.len() {
            if !self.is_kept(j) {
                grads.zero_row_unit(j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_tensor::rng::{stream, StreamTag};

    #[test]
    fn keep_count_edges() {
        assert_eq!(keep_count(10, 0.2), 8);
        assert_eq!(keep_count(10, 0.5), 5);
        assert_eq!(keep_count(10, 0.99), 1);
        assert_eq!(keep_count(3, 0.5), 2); // ceil(1.5)
        assert_eq!(keep_count(1, 0.5), 1);
    }

    #[test]
    fn global_sample_has_exact_cardinality() {
        let mut rng = stream(1, StreamTag::Pattern, 0, 0);
        for _ in 0..20 {
            let p = DropPattern::sample_global(100, 37, &mut rng);
            assert_eq!(p.kept(), 37);
            assert_eq!(p.len(), 100);
        }
    }

    #[test]
    fn global_sample_is_roughly_uniform_over_rows() {
        let mut rng = stream(2, StreamTag::Pattern, 0, 0);
        let mut counts = [0u32; 50];
        let trials = 2000;
        for _ in 0..trials {
            let p = DropPattern::sample_global(50, 25, &mut rng);
            for (j, c) in counts.iter_mut().enumerate() {
                if p.is_kept(j) {
                    *c += 1;
                }
            }
        }
        // Expected keep frequency 0.5 ± a few sigma.
        for (j, &c) in counts.iter().enumerate() {
            let f = c as f32 / trials as f32;
            assert!((f - 0.5).abs() < 0.06, "row {j} freq {f}");
        }
    }

    #[test]
    fn from_scores_keeps_top_rows() {
        let scores = [5.0, 1.0, 9.0, 3.0];
        let p = DropPattern::from_scores(&scores, 2);
        assert!(p.is_kept(2) && p.is_kept(0));
        assert!(!p.is_kept(1) && !p.is_kept(3));
    }

    #[test]
    fn from_scores_ties_break_deterministically() {
        let scores = [1.0, 1.0, 1.0, 1.0];
        let a = DropPattern::from_scores(&scores, 2);
        let b = DropPattern::from_scores(&scores, 2);
        assert_eq!(a, b);
        assert!(a.is_kept(0) && a.is_kept(1));
    }

    #[test]
    fn per_entry_sample_honours_quotas() {
        use fedbiad_nn::params::{EntryMeta, LayerKind};
        use fedbiad_tensor::Matrix;
        let mut params = ParamSet::new();
        params.push_entry(
            Matrix::zeros(10, 3),
            None,
            EntryMeta::new("a", LayerKind::DenseHidden, false, true),
        );
        params.push_entry(
            Matrix::zeros(4, 3),
            None,
            EntryMeta::new("b", LayerKind::DenseOutput, false, true),
        );
        let mut rng = stream(3, StreamTag::Pattern, 0, 0);
        let p = DropPattern::sample_per_entry(&params, 0.5, &mut rng);
        let kept_a = (0..10).filter(|&r| p.is_kept(r)).count();
        let kept_b = (10..14).filter(|&r| p.is_kept(r)).count();
        assert_eq!(kept_a, 5);
        assert_eq!(kept_b, 2);
    }

    #[test]
    fn mask_grads_zeroes_dropped_rows_only() {
        use fedbiad_nn::params::{EntryMeta, LayerKind};
        use fedbiad_tensor::Matrix;
        let mut grads = ParamSet::new();
        grads.push_entry(
            Matrix::full(4, 2, 1.0),
            Some(vec![1.0; 4]),
            EntryMeta::new("w", LayerKind::DenseHidden, true, true),
        );
        let mut beta = BitVec::new(4, true);
        beta.set(2, false);
        let p = DropPattern { beta };
        p.mask_grads(&mut grads);
        assert_eq!(grads.mat(0).row(2), &[0.0, 0.0]);
        assert_eq!(grads.bias(0)[2], 0.0);
        assert_eq!(grads.mat(0).row(0), &[1.0, 1.0]);
    }
}
