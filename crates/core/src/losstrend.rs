//! Loss-trend tracking (paper eq. (8)).
//!
//! The client keeps per-iteration losses and, every τ iterations (for
//! v ≥ 2τ), computes
//! ΔL^{k,v} = L̄^{k,v} − L̄^{k,v−τ}, where L̄^{k,v} is the mean loss of
//! iterations (v−τ, v]. ΔL ≤ 0 means the current dropping pattern is
//! "favourable for loss decrease" and is retained; otherwise the client
//! re-samples.

/// Sliding loss-trend tracker with window τ.
#[derive(Clone, Debug)]
pub struct LossTrend {
    tau: usize,
    losses: Vec<f32>,
}

impl LossTrend {
    /// New tracker with window `tau` (the paper uses τ = 3).
    pub fn new(tau: usize) -> Self {
        assert!(tau >= 1, "tau must be ≥ 1");
        Self {
            tau,
            losses: Vec::new(),
        }
    }

    /// Record iteration loss.
    pub fn observe(&mut self, loss: f32) {
        self.losses.push(loss);
    }

    /// Number of observations so far.
    pub fn len(&self) -> usize {
        self.losses.len()
    }

    /// `true` when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.losses.is_empty()
    }

    /// Window τ.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// ΔL per eq. (8) over the most recent 2τ observations; `None` until
    /// v ≥ 2τ.
    pub fn gap(&self) -> Option<f32> {
        let n = self.losses.len();
        if n < 2 * self.tau {
            return None;
        }
        let recent: f32 = self.losses[n - self.tau..].iter().sum::<f32>() / self.tau as f32;
        let previous: f32 = self.losses[n - 2 * self.tau..n - self.tau]
            .iter()
            .sum::<f32>()
            / self.tau as f32;
        Some(recent - previous)
    }

    /// Should the pattern be re-evaluated at (0-based) iteration `v`
    /// (Algorithm 1 line 18: v > τ ∧ v % τ == 0, on 1-based v)?
    pub fn at_checkpoint(&self, v_zero_based: usize) -> bool {
        let v = v_zero_based + 1;
        v > self.tau && v.is_multiple_of(self.tau) && self.losses.len() >= 2 * self.tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_needs_two_windows() {
        let mut t = LossTrend::new(3);
        for l in [3.0, 2.9, 2.8, 2.7, 2.6] {
            t.observe(l);
        }
        assert_eq!(t.gap(), None);
        t.observe(2.5);
        assert!(t.gap().is_some());
    }

    #[test]
    fn decreasing_loss_gives_negative_gap() {
        let mut t = LossTrend::new(2);
        for l in [4.0, 3.0, 2.0, 1.0] {
            t.observe(l);
        }
        // L̄ recent = 1.5, previous = 3.5.
        assert!((t.gap().unwrap() + 2.0).abs() < 1e-6);
    }

    #[test]
    fn increasing_loss_gives_positive_gap() {
        let mut t = LossTrend::new(2);
        for l in [1.0, 1.0, 2.0, 2.0] {
            t.observe(l);
        }
        assert!(t.gap().unwrap() > 0.0);
    }

    #[test]
    fn checkpoint_schedule_matches_algorithm1() {
        let mut t = LossTrend::new(3);
        let mut checkpoints = Vec::new();
        for v in 0..12 {
            t.observe(1.0);
            if t.at_checkpoint(v) {
                checkpoints.push(v + 1); // report 1-based
            }
        }
        // 1-based v with v > τ ∧ v % τ == 0 and ≥ 2τ observations: 6, 9, 12.
        assert_eq!(checkpoints, vec![6, 9, 12]);
    }

    #[test]
    fn gap_uses_most_recent_windows_only() {
        let mut t = LossTrend::new(1);
        for l in [100.0, 1.0, 2.0] {
            t.observe(l);
        }
        // Windows are [2.0] vs [1.0]: gap = +1 regardless of the old 100.
        assert!((t.gap().unwrap() - 1.0).abs() < 1e-6);
    }
}
