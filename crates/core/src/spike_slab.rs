//! Spike-and-slab variational machinery (paper §III-B/C, eq. (3)(4)(13)).
//!
//! Each weight row follows π̃(w_j) = β_j·N(µ_j, s̃²I) + (1−β_j)·δ(0). The
//! constant posterior variance s̃² is *not* a free hyper-parameter: the
//! paper derives the optimal value (eq. (13)) from the architecture
//! (S, L, D, d), the weight bound B and the amount of data m — and proves
//! Theorem 1 under exactly that setting. By construction it is tiny for
//! realistic models, so the reparameterised sample θ = β∘(U + s̃·ε) is a
//! barely-perturbed masked copy of U; the Bayesian structure matters
//! through the KL ≈ L2 term and the generalization analysis rather than
//! through injected noise.

use crate::pattern::DropPattern;
use fedbiad_nn::{ArchInfo, ParamSet};
use fedbiad_tensor::init::gaussian;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the posterior standard deviation s̃ is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum NoiseLevel {
    /// Optimal s̃² from eq. (13) given the architecture and current m
    /// (the paper's setting).
    Theory,
    /// Fixed s̃ (ablation knob).
    Fixed(f32),
    /// No reparameterisation noise (θ = β∘U exactly).
    Off,
}

/// Eq. (13): the optimal constant posterior variance
/// s̃² = S / (16·m·d²·log(3D)) · (2BD)^(−2L) ·
///        [ (d+1+1/(BD−1))² + 1/((BD)²−1) + 2/(BD−1)² ]^(−1).
///
/// * `s` — number of non-zero weights S;
/// * `m` — client-side total input data m_r;
/// * `arch` — supplies d (input dim), D (width), L (depth);
/// * `b` — the Assumption-2 weight bound B ≥ 2.
pub fn posterior_variance(s: f64, m: f64, arch: &ArchInfo, b: f64) -> f64 {
    assert!(b >= 2.0, "Assumption 2 requires B ≥ 2");
    assert!(m >= 1.0 && s >= 1.0);
    let d = arch.input_dim as f64;
    let big_d = arch.width as f64;
    let l = arch.depth as f64;
    let bd = b * big_d;

    let lead = s / (16.0 * m * d * d * (3.0 * big_d).ln());
    // (2BD)^(−2L) in log space to dodge underflow for deep/wide models.
    let decay = (-2.0 * l * (2.0 * bd).ln()).exp();
    let bracket = {
        let t1 = d + 1.0 + 1.0 / (bd - 1.0);
        let t2 = 1.0 / (bd * bd - 1.0);
        let t3 = 2.0 / ((bd - 1.0) * (bd - 1.0));
        t1 * t1 + t2 + t3
    };
    lead * decay / bracket
}

/// The paper's m_r = r · V · min{|D_1|, …, |D_K|} (client-side total input
/// data after r rounds).
pub fn client_total_data(round_one_based: usize, local_iters: usize, min_dk: usize) -> f64 {
    (round_one_based.max(1) * local_iters.max(1) * min_dk.max(1)) as f64
}

/// Sample θ ~ β∘N(U, s̃²I): clone U, add s̃·ε element-wise, zero dropped
/// rows. With `s_tilde == 0` this is just the masked copy.
pub fn sample_theta(
    u: &ParamSet,
    pattern: &DropPattern,
    s_tilde: f32,
    rng: &mut impl Rng,
) -> ParamSet {
    let mut theta = u.clone();
    if s_tilde > 0.0 {
        for e in 0..theta.num_entries() {
            let (m, b) = theta.mat_bias_mut(e);
            for v in m.as_mut_slice() {
                *v += s_tilde * gaussian(rng);
            }
            for v in b.iter_mut() {
                *v += s_tilde * gaussian(rng);
            }
        }
    }
    for j in 0..pattern.len() {
        if !pattern.is_kept(j) {
            theta.zero_row_unit(j);
        }
    }
    theta
}

/// Resolve a [`NoiseLevel`] to a concrete s̃ for the current round.
pub fn resolve_noise(
    level: NoiseLevel,
    arch: &ArchInfo,
    kept_weights: usize,
    m: f64,
    b: f64,
) -> f32 {
    match level {
        NoiseLevel::Off => 0.0,
        NoiseLevel::Fixed(s) => s,
        NoiseLevel::Theory => {
            posterior_variance(kept_weights.max(1) as f64, m, arch, b).sqrt() as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_nn::mask::BitVec;
    use fedbiad_nn::params::{EntryMeta, LayerKind};
    use fedbiad_tensor::rng::{stream, StreamTag};
    use fedbiad_tensor::Matrix;

    fn arch() -> ArchInfo {
        ArchInfo {
            total_weights: 101_770,
            depth: 2,
            width: 128,
            input_dim: 784,
        }
    }

    #[test]
    fn posterior_variance_is_positive_and_tiny() {
        let v = posterior_variance(80_000.0, 10_000.0, &arch(), 2.0);
        assert!(v > 0.0);
        assert!(v < 1e-6, "theory variance should be tiny, got {v}");
    }

    #[test]
    fn posterior_variance_decreases_with_data() {
        let a = posterior_variance(80_000.0, 1_000.0, &arch(), 2.0);
        let b = posterior_variance(80_000.0, 100_000.0, &arch(), 2.0);
        assert!(b < a);
        // Exactly inversely proportional to m.
        assert!((a / b - 100.0).abs() < 1e-6);
    }

    #[test]
    fn posterior_variance_survives_deep_wide_models() {
        // LSTM-scale: D=300, L=4 — (2BD)^(−2L) ≈ 1e-25 must not underflow
        // to zero.
        let lstm = ArchInfo {
            total_weights: 7_800_000,
            depth: 4,
            width: 300,
            input_dim: 300,
        };
        let v = posterior_variance(3_900_000.0, 50_000.0, &lstm, 2.0);
        assert!(v > 0.0 && v.is_finite());
    }

    #[test]
    fn m_r_formula() {
        assert_eq!(client_total_data(3, 10, 120), 3600.0);
        assert_eq!(client_total_data(0, 10, 120), 1200.0); // clamped to r=1
    }

    fn param_set() -> ParamSet {
        let mut p = ParamSet::new();
        p.push_entry(
            Matrix::full(4, 3, 0.5),
            Some(vec![0.5; 4]),
            EntryMeta::new("w", LayerKind::DenseHidden, true, true),
        );
        p
    }

    #[test]
    fn sample_theta_masks_and_perturbs() {
        let u = param_set();
        let mut beta = BitVec::new(4, true);
        beta.set(1, false);
        let pattern = DropPattern { beta };
        let mut rng = stream(4, StreamTag::PosteriorNoise, 0, 0);
        let theta = sample_theta(&u, &pattern, 0.1, &mut rng);
        // Dropped row exactly zero (spike), kept rows perturbed around U.
        assert_eq!(theta.mat(0).row(1), &[0.0, 0.0, 0.0]);
        assert_eq!(theta.bias(0)[1], 0.0);
        assert!(theta.mat(0).row(0).iter().all(|&v| (v - 0.5).abs() < 0.6));
        assert!(theta.mat(0).row(0).iter().any(|&v| v != 0.5));
    }

    #[test]
    fn sample_theta_zero_noise_is_masked_copy() {
        let u = param_set();
        let pattern = DropPattern::full(4);
        let mut rng = stream(5, StreamTag::PosteriorNoise, 0, 0);
        let theta = sample_theta(&u, &pattern, 0.0, &mut rng);
        assert_eq!(theta.flatten(), u.flatten());
    }

    #[test]
    fn resolve_noise_modes() {
        let a = arch();
        assert_eq!(resolve_noise(NoiseLevel::Off, &a, 100, 10.0, 2.0), 0.0);
        assert_eq!(
            resolve_noise(NoiseLevel::Fixed(0.3), &a, 100, 10.0, 2.0),
            0.3
        );
        let t = resolve_noise(NoiseLevel::Theory, &a, 80_000, 10_000.0, 2.0);
        assert!(t > 0.0 && t < 1e-3);
    }
}
