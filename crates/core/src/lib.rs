//! # fedbiad-core
//!
//! The paper's primary contribution — **FedBIAD** (federated learning with
//! Bayesian inference-based adaptive dropout, IPDPS'23) — together with
//! every comparison algorithm of its evaluation and the Theorem-1
//! generalization-bound calculator.
//!
//! * [`fedbiad::FedBiad`] — Algorithm 1: spike-and-slab row dropout with
//!   loss-trend-adaptive pattern search (stage one) and the
//!   experience-based importance indicator (stage two); composable with a
//!   sketched compressor (Fig. 5 / Table II "FedBIAD+DGC");
//! * [`baselines`] — FedAvg, FedDrop, AFD, FedMP, FjORD, HeteroFL;
//! * [`pattern`] / [`spike_slab`] / [`losstrend`] / [`indicator`] — the
//!   algorithm's building blocks (Z_S^N patterns, eq. (13) posterior
//!   variance, eq. (8) loss gap, eq. (9) weight scores);
//! * [`theory`] — eqs. (14), (15), (17), (18).

pub mod baselines;
pub mod combo;
pub mod fedbiad;
pub mod indicator;
pub mod losstrend;
pub mod neuron;
pub mod pattern;
pub mod spike_slab;
pub mod theory;

pub use fedbiad::{FedBiad, FedBiadConfig, PatternSampling};
pub use pattern::{keep_count, DropPattern};
