//! Neuron-level dropout structure for the baselines.
//!
//! FedDrop/AFD drop *neurons* (units), not weight rows: removing unit `u`
//! removes its incoming row(s) **and** its outgoing column(s) in the
//! downstream matrix. FjORD/HeteroFL shrink layer *widths*, which is the
//! ordered variant of the same structure. A [`NeuronGroup`] captures where
//! one logical unit lives inside the [`ParamSet`]:
//!
//! * MLP hidden unit `u` → row `u` of W1 (+bias) and column `u` of W2;
//! * embedding dimension `u` → column `u` of the embedding table and
//!   column `u` of the first LSTM layer's W_x;
//! * LSTM hidden unit `u` of layer `l` → rows `u, H+u, 2H+u, 3H+u` of both
//!   W_x^l and W_h^l, column `u` of W_h^l, and column `u` of the consumer
//!   (next layer's W_x or the output head). These are **recurrent** groups
//!   that FedDrop/AFD may not touch (paper §I) but FjORD/HeteroFL shrink.
//!
//! Groups are derived from the `ParamSet` metadata (layer kinds + shapes),
//! so the baselines stay architecture-agnostic.

use fedbiad_nn::mask::{BitVec, CoverageMask, ModelMask};
use fedbiad_nn::params::LayerKind;
use fedbiad_nn::ParamSet;

/// One set of droppable units and the rows/columns each unit occupies.
#[derive(Clone, Debug)]
pub struct NeuronGroup {
    /// Human-readable name.
    pub name: String,
    /// Number of units.
    pub count: usize,
    /// Units live in recurrent connections (off-limits to FedDrop/AFD).
    pub recurrent: bool,
    /// Unit `u` occupies row `offset + u` of `entry`, per block.
    pub row_blocks: Vec<(usize, usize)>,
    /// Unit `u` occupies column `offset + u` of `entry`, per block.
    pub col_blocks: Vec<(usize, usize)>,
}

/// Derive the neuron groups of a model from its parameter metadata.
pub fn derive_groups(params: &ParamSet) -> Vec<NeuronGroup> {
    let mut groups = Vec::new();
    let n = params.num_entries();
    for e in 0..n {
        match params.meta(e).kind {
            LayerKind::DenseHidden => {
                let units = params.mat(e).rows();
                let mut col_blocks = Vec::new();
                // The first later entry consuming `units` inputs.
                for e2 in e + 1..n {
                    let k = params.meta(e2).kind;
                    if params.mat(e2).cols() == units
                        && matches!(k, LayerKind::DenseHidden | LayerKind::DenseOutput)
                    {
                        col_blocks.push((e2, 0));
                        break;
                    }
                }
                groups.push(NeuronGroup {
                    name: format!("hidden/{}", params.meta(e).name),
                    count: units,
                    recurrent: false,
                    row_blocks: vec![(e, 0)],
                    col_blocks,
                });
            }
            LayerKind::Embedding => {
                let dims = params.mat(e).cols();
                let mut col_blocks = vec![(e, 0)];
                for e2 in e + 1..n {
                    if params.meta(e2).kind == LayerKind::LstmInput && params.mat(e2).cols() == dims
                    {
                        col_blocks.push((e2, 0));
                        break;
                    }
                }
                groups.push(NeuronGroup {
                    name: format!("embdim/{}", params.meta(e).name),
                    count: dims,
                    recurrent: false,
                    row_blocks: Vec::new(),
                    col_blocks,
                });
            }
            LayerKind::LstmRecurrent => {
                // Convention (LstmLmModel): W_x immediately precedes W_h.
                let h = params.mat(e).cols();
                let wx = e - 1;
                debug_assert_eq!(params.meta(wx).kind, LayerKind::LstmInput);
                let mut row_blocks = Vec::with_capacity(8);
                for g in 0..4 {
                    row_blocks.push((wx, g * h));
                    row_blocks.push((e, g * h));
                }
                let mut col_blocks = vec![(e, 0)];
                for e2 in e + 1..n {
                    let k = params.meta(e2).kind;
                    if params.mat(e2).cols() == h
                        && matches!(k, LayerKind::LstmInput | LayerKind::DenseOutput)
                    {
                        col_blocks.push((e2, 0));
                        break;
                    }
                }
                groups.push(NeuronGroup {
                    name: format!("lstm_hidden/{}", params.meta(e).name),
                    count: h,
                    recurrent: true,
                    row_blocks,
                    col_blocks,
                });
            }
            LayerKind::DenseOutput | LayerKind::LstmInput => {}
        }
    }
    groups
}

/// Build a coverage mask from per-group dropped-unit sets.
/// `drops[i]` pairs a group with the unit ids it drops.
pub fn mask_from_dropped_units(
    params: &ParamSet,
    drops: &[(&NeuronGroup, Vec<usize>)],
) -> ModelMask {
    let n = params.num_entries();
    let mut row_bv: Vec<Option<BitVec>> = vec![None; n];
    let mut col_bv: Vec<Option<BitVec>> = vec![None; n];
    for (g, units) in drops {
        for &(e, off) in &g.row_blocks {
            let bv = row_bv[e].get_or_insert_with(|| BitVec::new(params.mat(e).rows(), true));
            for &u in units {
                bv.set(off + u, false);
            }
        }
        for &(e, off) in &g.col_blocks {
            let bv = col_bv[e].get_or_insert_with(|| BitVec::new(params.mat(e).cols(), true));
            for &u in units {
                bv.set(off + u, false);
            }
        }
    }
    let per_entry = (0..n)
        .map(|e| match (row_bv[e].take(), col_bv[e].take()) {
            (None, None) => CoverageMask::Full,
            (Some(r), None) => CoverageMask::Rows(r),
            (None, Some(c)) => CoverageMask::RowsCols {
                rows: BitVec::new(params.mat(e).rows(), true),
                cols: c,
            },
            (Some(r), Some(c)) => CoverageMask::RowsCols { rows: r, cols: c },
        })
        .collect();
    ModelMask { per_entry }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedbiad_nn::lstm_lm::LstmLmModel;
    use fedbiad_nn::mlp::MlpModel;
    use fedbiad_nn::Model;
    use fedbiad_tensor::rng::{stream, StreamTag};

    #[test]
    fn mlp_has_one_hidden_group_with_downstream_cols() {
        let model = MlpModel::new(10, 8, 3);
        let p = model.init_params(&mut stream(1, StreamTag::Init, 0, 0));
        let gs = derive_groups(&p);
        assert_eq!(gs.len(), 1);
        assert_eq!(gs[0].count, 8);
        assert!(!gs[0].recurrent);
        assert_eq!(gs[0].row_blocks, vec![(0, 0)]);
        assert_eq!(gs[0].col_blocks, vec![(1, 0)]);
    }

    #[test]
    fn lstm_lm_groups_cover_embdim_and_hidden() {
        let model = LstmLmModel::new(30, 12, 16, 2);
        let p = model.init_params(&mut stream(2, StreamTag::Init, 0, 0));
        let gs = derive_groups(&p);
        // embdim + 2 lstm_hidden groups.
        assert_eq!(gs.len(), 3);
        let emb = &gs[0];
        assert_eq!(emb.count, 12);
        assert!(!emb.recurrent);
        // Columns of emb (entry 0) and of lstm0.wx (entry 1).
        assert_eq!(emb.col_blocks, vec![(0, 0), (1, 0)]);
        let h0 = &gs[1];
        assert!(h0.recurrent);
        assert_eq!(h0.count, 16);
        // 4 gate blocks in wx (entry 1) and wh (entry 2).
        assert_eq!(h0.row_blocks.len(), 8);
        // wh cols + next layer's wx cols.
        assert_eq!(h0.col_blocks, vec![(2, 0), (3, 0)]);
        let h1 = &gs[2];
        // Top layer's consumer is the head (entry 5).
        assert_eq!(h1.col_blocks, vec![(4, 0), (5, 0)]);
    }

    #[test]
    fn mask_from_units_zeroes_rows_and_columns() {
        let model = MlpModel::new(4, 3, 2);
        let mut p = model.init_params(&mut stream(3, StreamTag::Init, 0, 0));
        p.mat_mut(0).fill(1.0);
        p.mat_mut(1).fill(1.0);
        let gs = derive_groups(&p);
        let mask = mask_from_dropped_units(&p, &[(&gs[0], vec![1])]);
        let mut q = p.clone();
        mask.apply(&mut q);
        // Row 1 of W1 zeroed, column 1 of W2 zeroed.
        assert_eq!(q.mat(0).row(1), &[0.0; 4]);
        assert_eq!(q.mat(0).row(0), &[1.0; 4]);
        assert_eq!(q.mat(1).get(0, 1), 0.0);
        assert_eq!(q.mat(1).get(0, 0), 1.0);
        // Wire bytes shrink accordingly: unit costs (4+1) + 2 weights.
        assert!(mask.wire_bytes(&p) < p.total_bytes());
    }

    #[test]
    fn lstm_hidden_drop_touches_all_four_gates() {
        let model = LstmLmModel::new(10, 6, 4, 1);
        let mut p = model.init_params(&mut stream(4, StreamTag::Init, 0, 0));
        for e in 0..p.num_entries() {
            p.mat_mut(e).fill(1.0);
        }
        let gs = derive_groups(&p);
        let hidden = gs.iter().find(|g| g.recurrent).unwrap();
        let mask = mask_from_dropped_units(&p, &[(hidden, vec![2])]);
        let mut q = p.clone();
        mask.apply(&mut q);
        let h = 4;
        for g in 0..4 {
            assert_eq!(q.mat(1).row(g * h + 2), &[0.0; 6], "wx gate {g}");
            assert_eq!(q.mat(2).row(g * h + 2)[0], 0.0, "wh gate {g}");
        }
        // Column 2 of wh and of head zeroed.
        assert_eq!(q.mat(2).get(0, 2), 0.0);
        assert_eq!(q.mat(3).get(0, 2), 0.0);
        // Untouched entries stay full.
        assert_eq!(q.mat(0).get(0, 0), 1.0);
    }
}
