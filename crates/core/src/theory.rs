//! Theorem 1 calculator: the generalization-error bound of FedBIAD
//! (paper §IV-F, eqs. (13)–(18)).
//!
//! * [`epsilon_bound`] — ε_{S,L,D}(m_r), eq. (15);
//! * [`generalization_bound`] — the right-hand side of eq. (14);
//! * [`minimax_rate`] / [`holder_upper_bound`] — the m_r^{−2γ/(2γ+d)}
//!   envelope of eqs. (17)/(18) showing the rate is minimax-optimal up to
//!   a squared logarithmic factor.
//!
//! The `theory_bound` bench binary evaluates these alongside a measured
//! generalization gap to validate the *shape* (monotone decrease in
//! rounds, rate envelope).

use fedbiad_nn::ArchInfo;
use serde::{Deserialize, Serialize};

/// Inputs of Theorem 1.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TheoryParams {
    /// Non-zero weight count S.
    pub s: f64,
    /// Depth L.
    pub l: f64,
    /// Width D.
    pub d_width: f64,
    /// Input dimension d.
    pub d_in: f64,
    /// Assumption-2 weight bound B ≥ 2.
    pub b: f64,
    /// Tempering exponent α ∈ (0,1).
    pub alpha: f64,
    /// Likelihood variance σ².
    pub sigma2: f64,
}

impl TheoryParams {
    /// Build from an architecture and a dropout rate.
    pub fn from_arch(arch: &ArchInfo, dropout_rate: f64) -> Self {
        Self {
            s: (arch.total_weights as f64 * (1.0 - dropout_rate)).max(1.0),
            l: arch.depth as f64,
            d_width: arch.width as f64,
            d_in: arch.input_dim as f64,
            b: 2.0,
            alpha: 0.5,
            sigma2: 1.0,
        }
    }
}

/// Eq. (15):
/// ε_{S,L,D}(m_r) = (SL/m)·log(2BD) + (3S/m)·log(LD) + S·B²/(2m)
///                 + (2S/m)·log(4·d·max(m/S, 1)).
pub fn epsilon_bound(p: &TheoryParams, m_r: f64) -> f64 {
    assert!(m_r >= 1.0, "need at least one sample");
    let m = m_r;
    let s = p.s;
    (s * p.l / m) * (2.0 * p.b * p.d_width).ln()
        + (3.0 * s / m) * (p.l * p.d_width).ln()
        + s * p.b * p.b / (2.0 * m)
        + (2.0 * s / m) * (4.0 * p.d_in * (m / s).max(1.0)).ln()
}

/// Eq. (14) right-hand side:
/// (2σ²/(α(1−α)))·(1 + α/σ²)·ε_{S,L,D}(m_r) + (2/(K(1−α)))·Σ_k ξ_k,
/// with `xi_mean` = (1/K)·Σ ξ_k.
pub fn generalization_bound(p: &TheoryParams, m_r: f64, xi_mean: f64) -> f64 {
    assert!((0.0..1.0).contains(&p.alpha) && p.alpha > 0.0, "α ∈ (0,1)");
    let eps = epsilon_bound(p, m_r);
    let first = (2.0 * p.sigma2 / (p.alpha * (1.0 - p.alpha))) * (1.0 + p.alpha / p.sigma2) * eps;
    let second = 2.0 / (1.0 - p.alpha) * xi_mean;
    first + second
}

/// The minimax rate m_r^{−2γ/(2γ+d)} (eq. (18) lower-bound envelope up to
/// the constant C₂).
pub fn minimax_rate(m_r: f64, gamma: f64, d: f64) -> f64 {
    assert!(gamma > 0.0 && d > 0.0);
    m_r.powf(-2.0 * gamma / (2.0 * gamma + d))
}

/// The γ-Hölder upper bound envelope C₁·m_r^{−2γ/(2γ+d)}·log²(m_r)
/// (eq. (17)).
pub fn holder_upper_bound(m_r: f64, gamma: f64, d: f64, c1: f64) -> f64 {
    let lg = m_r.max(std::f64::consts::E).ln();
    c1 * minimax_rate(m_r, gamma, d) * lg * lg
}

/// m_r = r·V·min_k|D_k| (§IV-F).
pub fn m_r(round_one_based: usize, local_iters: usize, min_dk: usize) -> f64 {
    (round_one_based.max(1) * local_iters.max(1) * min_dk.max(1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TheoryParams {
        TheoryParams {
            s: 80_000.0,
            l: 2.0,
            d_width: 128.0,
            d_in: 784.0,
            b: 2.0,
            alpha: 0.5,
            sigma2: 1.0,
        }
    }

    #[test]
    fn epsilon_decreases_with_data() {
        let p = params();
        let seq: Vec<f64> = [1e3, 1e4, 1e5, 1e6]
            .iter()
            .map(|&m| epsilon_bound(&p, m))
            .collect();
        assert!(seq.windows(2).all(|w| w[1] < w[0]), "{seq:?}");
        assert!(seq.iter().all(|&e| e > 0.0));
    }

    #[test]
    fn epsilon_increases_with_model_size() {
        let small = params();
        let mut big = params();
        big.s *= 10.0;
        assert!(epsilon_bound(&big, 1e5) > epsilon_bound(&small, 1e5));
    }

    #[test]
    fn generalization_bound_dominates_epsilon_and_adds_xi() {
        let p = params();
        let no_xi = generalization_bound(&p, 1e5, 0.0);
        let with_xi = generalization_bound(&p, 1e5, 0.1);
        assert!(no_xi > epsilon_bound(&p, 1e5));
        // ξ term: 2/(1−α)·0.1 = 0.4 at α = 0.5.
        assert!((with_xi - no_xi - 0.4).abs() < 1e-9);
    }

    #[test]
    fn bound_decreases_over_rounds_theorem1_shape() {
        // The headline claim: as rounds grow, the bound decreases and
        // FedBIAD converges.
        let p = params();
        let bounds: Vec<f64> = (1..=60)
            .map(|r| generalization_bound(&p, m_r(r, 10, 120), 0.0))
            .collect();
        assert!(bounds.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn minimax_envelope_sandwiches_holder_bound() {
        // C₂·rate ≤ C₁·rate·log²m — same m-exponent, log² gap only.
        let (gamma, d) = (1.5, 10.0);
        for &m in &[1e3, 1e5, 1e7] {
            let lower = minimax_rate(m, gamma, d);
            let upper = holder_upper_bound(m, gamma, d, 1.0);
            assert!(upper >= lower);
            let ratio = upper / lower;
            let lg = m.ln();
            assert!((ratio - lg * lg).abs() < 1e-6, "ratio is exactly log²m");
        }
    }

    #[test]
    fn rate_exponent_matches_formula() {
        let (gamma, d) = (2.0, 8.0);
        let r1 = minimax_rate(1e4, gamma, d);
        let r2 = minimax_rate(1e6, gamma, d);
        // Exponent −2γ/(2γ+d) = −1/3: ×100 data ⇒ rate ÷ 100^(1/3).
        let expect = 100f64.powf(-1.0 / 3.0);
        assert!((r2 / r1 - expect).abs() < 1e-9);
    }

    #[test]
    fn from_arch_applies_dropout_to_s() {
        let arch = ArchInfo {
            total_weights: 1000,
            depth: 2,
            width: 16,
            input_dim: 8,
        };
        let p = TheoryParams::from_arch(&arch, 0.5);
        assert_eq!(p.s, 500.0);
    }
}
