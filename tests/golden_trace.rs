//! Golden-trace regression: a pinned content digest of the 2-round
//! `scenarios/fig2.toml` run (smoke scale, the exact CI smoke
//! configuration), so any kernel or engine change that drifts numerics —
//! however slightly — fails loudly instead of silently shifting every
//! figure.
//!
//! Wall-clock fields (`local_seconds_*`, `agg_seconds`) are genuinely
//! non-deterministic and are zeroed out of the digest, matching the
//! repo's log-comparison contract (README / `tests/scenario_equivalence.rs`).
//! Everything else — losses, accuracies, byte accounting, run labels and
//! ordering — feeds an FNV-1a hash over the raw f32/f64 bits, so the
//! digest is independent of float formatting.
//!
//! # Updating the pinned digest
//!
//! If you change numerics **on purpose** (new initialisation, a different
//! association order in a kernel, a workload tweak), this test will fail
//! with the newly computed digest in the panic message:
//!
//! 1. verify the change is intentional and justified (the differential
//!    suite `tests/batched_equivalence.rs` must still pass — batched and
//!    per-sample paths have to move *together*);
//! 2. replace `GOLDEN_DIGEST` below with the printed value;
//! 3. call out the numeric drift explicitly in the PR description.
//!
//! A failure here with *no* intentional numeric change means a kernel
//! regression — do not update the constant; find the bug.

use fedbiad::scenario::{execute, Overrides, RunOutcome, ScenarioSpec};
use std::path::Path;

/// Pinned digest of the 2-round smoke fig2 trace (see module docs for
/// the update procedure).
const GOLDEN_DIGEST: u64 = 0x8CC5_8120_02BF_5841;

/// FNV-1a, the same primitive the scenario engine uses for spec hashes.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The CI smoke configuration: 2 rounds, smoke scale, 200 eval samples.
fn smoke_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::from_path(Path::new("scenarios/fig2.toml"))
        .expect("bundled fig2 spec must load");
    spec.apply_overrides(&Overrides {
        rounds: Some(2),
        scale: Some(fedbiad::fl::workload::Scale::Smoke),
        eval_max: Some(200),
        ..Default::default()
    })
    .expect("overrides must validate");
    spec
}

/// Canonical byte string: run labels in grid order, then per round the
/// deterministic fields as raw bits; wall-clock and RSS fields zeroed
/// (i.e. omitted — appending zeros would add no information).
fn digest_of(outcomes: &[RunOutcome]) -> u64 {
    let mut canon = String::new();
    for o in outcomes {
        canon.push_str(&format!(
            "run={};dataset={};method={};seed={};",
            o.run.label, o.log.dataset, o.log.method, o.log.seed
        ));
        for r in &o.log.records {
            canon.push_str(&format!(
                "round={};train={:08x};test_loss={:016x};test_acc={:016x};up_mean={};up_max={};down={};",
                r.round,
                r.train_loss.to_bits(),
                r.test_loss.to_bits(),
                r.test_acc.to_bits(),
                r.upload_bytes_mean,
                r.upload_bytes_max,
                r.download_bytes,
            ));
        }
    }
    fnv1a64(canon.as_bytes())
}

#[test]
fn fig2_two_round_trace_digest_is_pinned() {
    let mut spec = smoke_spec();
    // The bundled spec turns the streaming engine on (execution-only
    // knob); pin the dense reference engine here so both code paths keep
    // golden coverage — the streaming test below re-enables it.
    spec.aggregation.streaming = false;
    spec.aggregation.shard_kb = None;

    let outcomes = execute(&spec).expect("fig2 smoke run must execute");
    assert_eq!(outcomes.len(), 5, "fig2 sweeps five methods");

    let digest = digest_of(&outcomes);
    assert_eq!(
        digest, GOLDEN_DIGEST,
        "fig2 smoke trace drifted: computed digest {digest:#018X} != pinned \
         {GOLDEN_DIGEST:#018X}. If this numeric change is intentional, follow the update \
         procedure in this file's header; otherwise a kernel change broke determinism."
    );
}

/// The same pinned digest must come out of the *streaming* sharded
/// aggregation engine: the engine knob is bit-transparent, so no second
/// golden constant exists — dense and streaming share this one.
#[test]
fn fig2_streaming_engine_reproduces_the_same_digest() {
    let mut spec = smoke_spec();
    // Tiny shards maximise boundary coverage.
    spec.aggregation.streaming = true;
    spec.aggregation.shard_kb = Some(1);

    let outcomes = execute(&spec).expect("fig2 streaming smoke run must execute");
    let digest = digest_of(&outcomes);
    assert_eq!(
        digest, GOLDEN_DIGEST,
        "streaming aggregation drifted from the dense golden trace: {digest:#018X} != \
         {GOLDEN_DIGEST:#018X} — the engines must move together (see \
         tests/aggregation_equivalence.rs)."
    );
}

/// The telemetry inertness contract: running the identical experiment
/// under an **active** telemetry capture — workspace builds compile the
/// collector in via the bench harness — must reproduce the exact same
/// pinned digest at 1, 2 and 8 worker threads. The capture-off runs
/// above already pin the quiescent path, so together the three states
/// (not compiled / compiled-idle / capturing) share one golden constant.
#[test]
fn fig2_digest_is_unchanged_under_active_telemetry_capture() {
    if !fedbiad::telemetry::compiled() {
        // `cargo test -p`-style builds without the bench harness in the
        // graph get the no-op collector; nothing to capture.
        eprintln!("telemetry not compiled in; capture leg skipped");
        return;
    }
    let spec = smoke_spec(); // streaming on, per the bundled spec
    for threads in ["1", "2", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        fedbiad::telemetry::begin_capture();
        let outcomes = execute(&spec).expect("fig2 smoke run must execute");
        let capture = fedbiad::telemetry::end_capture();
        std::env::remove_var("RAYON_NUM_THREADS");

        assert!(
            !capture.is_empty(),
            "capture recorded nothing — instrumentation went missing"
        );
        let digest = digest_of(&outcomes);
        assert_eq!(
            digest, GOLDEN_DIGEST,
            "telemetry capture perturbed the trace at {threads} thread(s): \
             {digest:#018X} != {GOLDEN_DIGEST:#018X} — spans/counters must be \
             purely observational (no RNG draws, no reordering)."
        );
    }
}
