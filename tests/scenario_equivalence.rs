//! Acceptance regression for the scenario engine: executing the bundled
//! `scenarios/fig2.toml` spec must reproduce the legacy `fig2` code path
//! — `build()` once, then `run_method()` per method with shared seed —
//! **byte-for-byte** in the serialized `ExperimentLog` JSON.
//!
//! Wall-clock caveat: the lock-step runner measures `local_seconds_*`
//! and `agg_seconds` with `Instant::now()`, and the repository's
//! reproducibility contract (README) explicitly excludes those fields —
//! as it does `peak_rss_bytes`, a process-wide high-water mark sampled
//! at record time. They are zeroed on both sides before comparing; every
//! other byte — losses, accuracies, upload/download bytes, round
//! indices, config ids — must match exactly. The sim-mode comparison
//! (`sim_tta.toml`) has a fully virtual clock, so there the JSON must
//! match with no exclusions beyond the RSS sample.

use fedbiad::fl::workload::build;
use fedbiad::fl::ExperimentLog;
use fedbiad::scenario::{execute, run_method, run_sim_method, Overrides, RunOpts, ScenarioSpec};
use std::path::Path;

fn bundled(name: &str) -> ScenarioSpec {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(name);
    ScenarioSpec::from_path(&path).expect("bundled spec is valid")
}

/// Zero the wall-clock-only fields (see module docs).
fn strip_wall_clock(log: &mut ExperimentLog) {
    for r in &mut log.records {
        r.local_seconds_mean = 0.0;
        r.local_seconds_max = 0.0;
        r.agg_seconds = 0.0;
        r.peak_rss_bytes = 0;
        r.rss_bytes = 0;
    }
}

/// Zero only the RSS samples — sim logs are otherwise fully virtual.
fn strip_rss(log: &mut ExperimentLog) {
    for r in &mut log.records {
        r.peak_rss_bytes = 0;
        r.rss_bytes = 0;
    }
}

#[test]
fn fig2_spec_reproduces_the_legacy_binary_byte_for_byte() {
    // Shrink to test scale exactly the way the binary's flags would.
    let mut spec = bundled("fig2.toml");
    spec.apply_overrides(&Overrides {
        rounds: Some(3),
        scale: Some(fedbiad::fl::workload::Scale::Smoke),
        eval_max: Some(500),
        ..Default::default()
    })
    .unwrap();

    let engine_logs: Vec<ExperimentLog> =
        execute(&spec).unwrap().into_iter().map(|o| o.log).collect();

    // The legacy fig2 main(): one bundle for the run seed, every method
    // on the same seed and options.
    let bundle = build(spec.sweep.workloads[0], spec.run.scale, spec.run.seed);
    let legacy_logs: Vec<ExperimentLog> = spec
        .sweep
        .methods
        .iter()
        .map(|&m| {
            let mut opts = RunOpts::for_rounds(spec.run.rounds, spec.run.seed);
            opts.eval_max_samples = spec.run.eval_max;
            run_method(m, &bundle, opts)
        })
        .collect();

    assert_eq!(engine_logs.len(), legacy_logs.len());
    assert_eq!(engine_logs.len(), 5, "fig2 sweeps five methods");
    for (mut a, mut b) in engine_logs.into_iter().zip(legacy_logs) {
        strip_wall_clock(&mut a);
        strip_wall_clock(&mut b);
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb, "engine and legacy logs diverge for {}", a.method);
    }
}

#[test]
fn sim_tta_spec_reproduces_the_legacy_sim_runner_with_no_exclusions() {
    let mut spec = bundled("sim_tta.toml");
    spec.apply_overrides(&Overrides {
        rounds: Some(2),
        scale: Some(fedbiad::fl::workload::Scale::Smoke),
        eval_max: Some(500),
        fraction: Some(0.5),
        methods: Some(vec![fedbiad::scenario::Method::FedAvg]),
        profiles: Some(vec![fedbiad::scenario::ProfileChoice::Stragglers]),
        ..Default::default()
    })
    .unwrap();

    let outcomes = execute(&spec).unwrap();
    assert_eq!(outcomes.len(), 3, "one run per policy");

    let bundle = build(spec.sweep.workloads[0], spec.run.scale, spec.run.seed);
    for o in outcomes {
        let mut opts = RunOpts::for_rounds(spec.run.rounds, spec.run.seed);
        opts.eval_max_samples = spec.run.eval_max;
        opts.client_fraction = spec.run.fraction;
        let mut report = run_sim_method(
            o.run.method,
            &bundle,
            opts,
            o.run.policy.unwrap(),
            o.run.profile.unwrap().resolve(None),
        );
        // Virtual clock ⇒ the whole log (timing fields included) must be
        // byte-identical; only the process-RSS sample is excluded.
        let mut engine_log = o.log;
        strip_rss(&mut engine_log);
        strip_rss(&mut report.log);
        assert_eq!(
            serde_json::to_string(&engine_log).unwrap(),
            serde_json::to_string(&report.log).unwrap(),
            "sim engine diverges under policy {}",
            report.policy
        );
        let sim = o.sim.expect("sim meta");
        assert_eq!(sim.round_end_seconds, report.round_end_seconds);
        assert_eq!(sim.total_virtual_seconds, report.total_virtual_seconds);
    }
}
