//! Cross-crate byte-accounting invariants: the Table-I/II upload-size
//! columns are *exact* functions of architecture + method + rate, so they
//! are verified analytically here — including at full paper scale, where
//! no training is needed.

use fedbiad::compress::codec::{encode_delta, encode_weights, encode_weights_delta};
use fedbiad::compress::dgc::Dgc;
use fedbiad::compress::fedpaq::FedPaq;
use fedbiad::compress::none::NoCompression;
use fedbiad::compress::signsgd::SignSgd;
use fedbiad::compress::stc::Stc;
use fedbiad::compress::{ClientState, Compressor};
use fedbiad::core::combo::sketch_masked_weights;
use fedbiad::core::pattern::{keep_count, DropPattern};
use fedbiad::nn::lstm_lm::LstmLmModel;
use fedbiad::nn::mlp::MlpModel;
use fedbiad::nn::Model;
use fedbiad::tensor::rng::{stream, StreamTag};
use rand::Rng;

#[test]
fn fedbiad_upload_fraction_tracks_one_minus_p() {
    // Expected kept fraction of bytes ≈ (1−p) — rows have different
    // lengths so individual patterns vary; average over samples.
    let model = MlpModel::new(784, 128, 10);
    let params = model.init_params(&mut stream(1, StreamTag::Init, 0, 0));
    let j = params.num_row_units();
    let total = params.total_bytes() as f64;
    for p in [0.2f32, 0.5] {
        let keep = keep_count(j, p);
        let mut rng = stream(2, StreamTag::Pattern, 0, 0);
        let mut sum = 0.0;
        let samples = 30;
        for _ in 0..samples {
            let pat = DropPattern::sample_global(j, keep, &mut rng);
            let mask = pat.to_mask(&params);
            sum += mask.wire_bytes(&params) as f64 / total;
        }
        let frac = sum / samples as f64;
        assert!(
            (frac - (1.0 - p as f64)).abs() < 0.08,
            "p={p}: mean kept fraction {frac}"
        );
    }
}

#[test]
fn paper_scale_ptb_fedbiad_upload_matches_table1() {
    // Table I: PTB FedAvg 29.8 MB, FedBIAD 16.4 MB at p = 0.5 (2×).
    let model = LstmLmModel::paper_ptb();
    let params = model.init_params(&mut stream(3, StreamTag::Init, 0, 0));
    let total_mb = params.total_bytes() as f64 / (1024.0 * 1024.0);
    assert!((total_mb - 29.8).abs() < 0.1, "full model {total_mb:.2} MB");

    let j = params.num_row_units();
    let keep = keep_count(j, 0.5);
    let mut rng = stream(4, StreamTag::Pattern, 0, 0);
    let pat = DropPattern::sample_global(j, keep, &mut rng);
    let up_mb = pat.to_mask(&params).wire_bytes(&params) as f64 / (1024.0 * 1024.0);
    // ≈ half the model ± row-length variance; the paper reports 16.4 MB
    // (their masked half plus the pattern bits).
    assert!(
        up_mb > 13.5 && up_mb < 16.5,
        "paper-scale FedBIAD upload {up_mb:.2} MB should be ≈ 14.9 ± row variance"
    );
    let save = total_mb / up_mb;
    assert!(
        save > 1.8 && save < 2.2,
        "save ratio {save:.2} should be ≈ 2x"
    );
}

#[test]
fn pattern_bits_are_negligible_vs_weights() {
    // "β in the Reddit dataset is 0.3 KB, much smaller than the original
    // model size of 29.8 MB" (§V-B).
    let model = LstmLmModel::paper_ptb();
    let params = model.init_params(&mut stream(5, StreamTag::Init, 0, 0));
    let mask = fedbiad::nn::ModelMask::from_row_pattern(
        &params,
        &DropPattern::full(params.num_row_units()).beta,
    );
    let overhead = mask.wire_bytes(&params) - mask.kept_params(&params) as u64 * 4;
    // Our row-granular bitmap over all matrices: a few KB at most.
    assert!(overhead < 8 * 1024, "pattern overhead {overhead} B");
    assert!((overhead as f64) < params.total_bytes() as f64 * 1e-3);
}

#[test]
fn dgc_paper_scale_save_ratio_matches_table2_order() {
    // Table II PTB: DGC 95 KB of 29.8 MB ≈ 321×. With 0.1 % sparsity and
    // 64-bit positions: 29.8 MB / (k·12 B) where k = 0.001·N.
    let model = LstmLmModel::paper_ptb();
    let n = model.arch().total_weights;
    let k = n / 1000;
    let wire = fedbiad::compress::bytes::sparse_f32_bytes(k);
    let save = (n as f64 * 4.0) / wire as f64;
    assert!(
        save > 300.0 && save < 340.0,
        "DGC paper-scale save {save:.0}x"
    );
}

/// The analytical `wire_bytes` every compressor reports must equal the
/// *length of its real encoding* — the byte-accounting columns of
/// Tables I/II are no longer a model, they are measurements of actual
/// buffers. (Before the wire codec existed this file was analytical
/// only.)
#[test]
fn every_compressor_encoding_length_equals_reported_wire_bytes() {
    let n = 4096usize;
    let mut rng = stream(11, StreamTag::Compress, 0, 0);
    let delta: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let comps: Vec<(&str, Box<dyn Compressor>)> = vec![
        ("none", Box::new(NoCompression)),
        ("dgc", Box::new(Dgc::paper())),
        ("signsgd", Box::new(SignSgd::default())),
        ("stc", Box::new(Stc::paper())),
        ("fedpaq-8", Box::new(FedPaq::paper())),
        ("fedpaq-6", Box::new(FedPaq { bits: 6 })), // unaligned packing
    ];
    for (name, comp) in comps {
        let mut st = ClientState::default();
        let c = comp.compress(&mut st, &delta, 5, &mut rng);
        // The structural payload reports the same count…
        assert_eq!(c.payload.wire_bytes(), c.wire_bytes, "{name}: payload");
        // …and the actual frame body has exactly that many bytes.
        let msg = encode_delta(&c.payload);
        assert_eq!(msg.body_bytes(), c.wire_bytes, "{name}: encoded body");
    }
}

/// Masked-weights uploads: the encoded body (pattern bitmaps + kept
/// values) is exactly `ModelMask::wire_bytes`, at paper scale.
#[test]
fn masked_weights_encoding_length_matches_mask_accounting() {
    let model = MlpModel::new(784, 128, 10);
    let params = model.init_params(&mut stream(21, StreamTag::Init, 0, 0));
    let j = params.num_row_units();
    let mut rng = stream(22, StreamTag::Pattern, 0, 0);
    for p in [0.2f32, 0.5, 0.8] {
        let pat = DropPattern::sample_global(j, keep_count(j, p), &mut rng);
        let mask = pat.to_mask(&params);
        let mut masked = params.clone();
        mask.apply(&mut masked);
        let msg = encode_weights(&masked, &mask);
        assert_eq!(msg.body_bytes(), mask.wire_bytes(&masked), "p = {p}");
    }
}

/// Fig. 5 combo frames: encoded body = compressed payload bytes +
/// pattern-bit overhead, for every compressor.
#[test]
fn combo_encoding_length_matches_payload_plus_pattern() {
    let model = MlpModel::new(64, 32, 10);
    let global = model.init_params(&mut stream(31, StreamTag::Init, 0, 0));
    let j = global.num_row_units();
    let mut prng = stream(32, StreamTag::Pattern, 0, 0);
    let pat = DropPattern::sample_global(j, keep_count(j, 0.5), &mut prng);
    let mask = pat.to_mask(&global);
    let mut masked_u = global.clone();
    for v in masked_u.mat_mut(0).as_mut_slice() {
        *v += 0.25;
    }
    mask.apply(&mut masked_u);

    let comps: Vec<(&str, Box<dyn Compressor>)> = vec![
        ("none", Box::new(NoCompression)),
        ("dgc", Box::new(Dgc::paper())),
        ("signsgd", Box::new(SignSgd::default())),
        ("stc", Box::new(Stc::paper())),
        ("fedpaq", Box::new(FedPaq::paper())),
    ];
    let overhead = mask.wire_bytes(&masked_u) - mask.kept_params(&masked_u) as u64 * 4;
    for (name, comp) in comps {
        let mut st = ClientState::default();
        let mut rng = stream(33, StreamTag::Compress, 0, 0);
        let out = sketch_masked_weights(
            comp.as_ref(),
            &mut st,
            &masked_u,
            &global,
            &mask,
            0,
            &mut rng,
            false,
        );
        let msg = encode_weights_delta(&mask, &out.payload);
        assert_eq!(msg.body_bytes(), out.payload_bytes + overhead, "{name}");
    }
}

#[test]
fn fedbiad_dgc_combo_halves_dgc_bytes_at_p05() {
    // Table II: FedBIAD+DGC ≈ 53-55 KB vs naive DGC ≈ 95-97 KB on PTB —
    // compressing only the kept rows halves the top-k base set.
    let model = LstmLmModel::paper_ptb();
    let n = model.arch().total_weights as f64;
    let naive_k = n * 0.001;
    let combo_k = n * 0.5 * 0.001; // kept-row subvector
    let naive = fedbiad::compress::bytes::sparse_f32_bytes(naive_k as usize);
    let combo = fedbiad::compress::bytes::sparse_f32_bytes(combo_k as usize);
    let ratio = naive as f64 / combo as f64;
    assert!(
        (ratio - 2.0).abs() < 0.05,
        "combo should halve DGC bytes, got {ratio:.2}"
    );
}
