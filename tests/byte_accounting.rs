//! Cross-crate byte-accounting invariants: the Table-I/II upload-size
//! columns are *exact* functions of architecture + method + rate, so they
//! are verified analytically here — including at full paper scale, where
//! no training is needed.

use fedbiad::core::pattern::{keep_count, DropPattern};
use fedbiad::nn::lstm_lm::LstmLmModel;
use fedbiad::nn::mlp::MlpModel;
use fedbiad::nn::Model;
use fedbiad::tensor::rng::{stream, StreamTag};

#[test]
fn fedbiad_upload_fraction_tracks_one_minus_p() {
    // Expected kept fraction of bytes ≈ (1−p) — rows have different
    // lengths so individual patterns vary; average over samples.
    let model = MlpModel::new(784, 128, 10);
    let params = model.init_params(&mut stream(1, StreamTag::Init, 0, 0));
    let j = params.num_row_units();
    let total = params.total_bytes() as f64;
    for p in [0.2f32, 0.5] {
        let keep = keep_count(j, p);
        let mut rng = stream(2, StreamTag::Pattern, 0, 0);
        let mut sum = 0.0;
        let samples = 30;
        for _ in 0..samples {
            let pat = DropPattern::sample_global(j, keep, &mut rng);
            let mask = pat.to_mask(&params);
            sum += mask.wire_bytes(&params) as f64 / total;
        }
        let frac = sum / samples as f64;
        assert!(
            (frac - (1.0 - p as f64)).abs() < 0.08,
            "p={p}: mean kept fraction {frac}"
        );
    }
}

#[test]
fn paper_scale_ptb_fedbiad_upload_matches_table1() {
    // Table I: PTB FedAvg 29.8 MB, FedBIAD 16.4 MB at p = 0.5 (2×).
    let model = LstmLmModel::paper_ptb();
    let params = model.init_params(&mut stream(3, StreamTag::Init, 0, 0));
    let total_mb = params.total_bytes() as f64 / (1024.0 * 1024.0);
    assert!((total_mb - 29.8).abs() < 0.1, "full model {total_mb:.2} MB");

    let j = params.num_row_units();
    let keep = keep_count(j, 0.5);
    let mut rng = stream(4, StreamTag::Pattern, 0, 0);
    let pat = DropPattern::sample_global(j, keep, &mut rng);
    let up_mb = pat.to_mask(&params).wire_bytes(&params) as f64 / (1024.0 * 1024.0);
    // ≈ half the model ± row-length variance; the paper reports 16.4 MB
    // (their masked half plus the pattern bits).
    assert!(
        up_mb > 13.5 && up_mb < 16.5,
        "paper-scale FedBIAD upload {up_mb:.2} MB should be ≈ 14.9 ± row variance"
    );
    let save = total_mb / up_mb;
    assert!(
        save > 1.8 && save < 2.2,
        "save ratio {save:.2} should be ≈ 2x"
    );
}

#[test]
fn pattern_bits_are_negligible_vs_weights() {
    // "β in the Reddit dataset is 0.3 KB, much smaller than the original
    // model size of 29.8 MB" (§V-B).
    let model = LstmLmModel::paper_ptb();
    let params = model.init_params(&mut stream(5, StreamTag::Init, 0, 0));
    let mask = fedbiad::nn::ModelMask::from_row_pattern(
        &params,
        &DropPattern::full(params.num_row_units()).beta,
    );
    let overhead = mask.wire_bytes(&params) - mask.kept_params(&params) as u64 * 4;
    // Our row-granular bitmap over all matrices: a few KB at most.
    assert!(overhead < 8 * 1024, "pattern overhead {overhead} B");
    assert!((overhead as f64) < params.total_bytes() as f64 * 1e-3);
}

#[test]
fn dgc_paper_scale_save_ratio_matches_table2_order() {
    // Table II PTB: DGC 95 KB of 29.8 MB ≈ 321×. With 0.1 % sparsity and
    // 64-bit positions: 29.8 MB / (k·12 B) where k = 0.001·N.
    let model = LstmLmModel::paper_ptb();
    let n = model.arch().total_weights;
    let k = n / 1000;
    let wire = fedbiad::compress::bytes::sparse_f32_bytes(k);
    let save = (n as f64 * 4.0) / wire as f64;
    assert!(
        save > 300.0 && save < 340.0,
        "DGC paper-scale save {save:.0}x"
    );
}

#[test]
fn fedbiad_dgc_combo_halves_dgc_bytes_at_p05() {
    // Table II: FedBIAD+DGC ≈ 53-55 KB vs naive DGC ≈ 95-97 KB on PTB —
    // compressing only the kept rows halves the top-k base set.
    let model = LstmLmModel::paper_ptb();
    let n = model.arch().total_weights as f64;
    let naive_k = n * 0.001;
    let combo_k = n * 0.5 * 0.001; // kept-row subvector
    let naive = fedbiad::compress::bytes::sparse_f32_bytes(naive_k as usize);
    let combo = fedbiad::compress::bytes::sparse_f32_bytes(combo_k as usize);
    let ratio = naive as f64 / combo as f64;
    assert!(
        (ratio - 2.0).abs() < 0.05,
        "combo should halve DGC bytes, got {ratio:.2}"
    );
}
