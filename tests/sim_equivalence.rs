//! The simulator's correctness anchor: with the synchronous-barrier
//! policy, `fedbiad-sim` must reproduce the legacy lock-step runner's
//! round records **bit-for-bit** — same client selection, same local
//! updates, same aggregation, same evaluation. Only the timing fields
//! differ by construction (the runner measures wall-clock, the simulator
//! records virtual seconds), so they are excluded, exactly as in
//! `tests/thread_determinism.rs`.

use fedbiad::prelude::*;
use fedbiad::sim::CostModel;

fn base_cfg(bundle: &fedbiad::fl::workload::WorkloadBundle, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        rounds: 5,
        client_fraction: 0.5,
        seed,
        train: bundle.train,
        eval_topk: bundle.eval_topk,
        eval_every: 1,
        eval_max_samples: 0,
        agg: Default::default(),
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    }
}

fn assert_records_bit_identical(a: &ExperimentLog, b: &ExperimentLog, what: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{what}: round count");
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.round, rb.round, "{what}: round index");
        assert_eq!(
            ra.train_loss.to_bits(),
            rb.train_loss.to_bits(),
            "{what}: train loss, round {}",
            ra.round
        );
        assert_eq!(
            ra.test_loss.to_bits(),
            rb.test_loss.to_bits(),
            "{what}: test loss, round {}",
            ra.round
        );
        assert_eq!(
            ra.test_acc.to_bits(),
            rb.test_acc.to_bits(),
            "{what}: test acc, round {}",
            ra.round
        );
        assert_eq!(
            ra.upload_bytes_mean, rb.upload_bytes_mean,
            "{what}: upload bytes, round {}",
            ra.round
        );
        assert_eq!(
            ra.upload_bytes_max, rb.upload_bytes_max,
            "{what}: max upload bytes, round {}",
            ra.round
        );
        assert_eq!(
            ra.download_bytes, rb.download_bytes,
            "{what}: download bytes, round {}",
            ra.round
        );
    }
}

#[test]
fn sync_barrier_reproduces_legacy_runner_for_fedavg() {
    let bundle = build(Workload::MnistLike, Scale::Smoke, 11);
    let cfg = base_cfg(&bundle, 11);

    let legacy = Experiment::new(bundle.model.as_ref(), &bundle.data, FedAvg::new(), cfg).run();
    let sim_cfg = SimConfig::new(cfg, HeterogeneityProfile::homogeneous_5g());
    let report = Simulator::new(
        bundle.model.as_ref(),
        &bundle.data,
        FedAvg::new(),
        SyncBarrier,
        sim_cfg,
    )
    .run();

    assert_records_bit_identical(&legacy, &report.log, "fedavg sync vs legacy");
    // The virtual clock moved strictly forward, one commit per round.
    assert_eq!(report.round_end_seconds.len(), 5);
    assert!(report.round_end_seconds.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn sync_barrier_reproduces_legacy_runner_for_fedbiad() {
    // FedBIAD exercises the richest per-round machinery: persistent
    // client score state, pattern sampling, masked uploads of varying
    // size, and the stage boundary.
    let bundle = build(Workload::MnistLike, Scale::Smoke, 2024);
    let cfg = base_cfg(&bundle, 2024);

    let mk = || FedBiad::new(FedBiadConfig::paper(bundle.dropout_rate, 3));
    let legacy = Experiment::new(bundle.model.as_ref(), &bundle.data, mk(), cfg).run();
    let sim_cfg = SimConfig::new(cfg, HeterogeneityProfile::homogeneous_5g());
    let report = Simulator::new(
        bundle.model.as_ref(),
        &bundle.data,
        mk(),
        SyncBarrier,
        sim_cfg,
    )
    .run();

    assert_records_bit_identical(&legacy, &report.log, "fedbiad sync vs legacy");
}

#[test]
fn heterogeneity_changes_virtual_time_but_not_sync_results() {
    // The barrier waits for everyone, so WHAT is learned is independent
    // of WHO is slow — only the virtual clock should move.
    let bundle = build(Workload::MnistLike, Scale::Smoke, 7);
    let cfg = base_cfg(&bundle, 7);

    let legacy = Experiment::new(bundle.model.as_ref(), &bundle.data, FedAvg::new(), cfg).run();
    let slow = HeterogeneityProfile::Stragglers {
        fraction: 0.5,
        slowdown: 25.0,
        jitter: 0.1,
    };
    let hetero = Simulator::new(
        bundle.model.as_ref(),
        &bundle.data,
        FedAvg::new(),
        SyncBarrier,
        SimConfig::new(cfg, slow),
    )
    .run();
    let homog = Simulator::new(
        bundle.model.as_ref(),
        &bundle.data,
        FedAvg::new(),
        SyncBarrier,
        SimConfig::new(cfg, HeterogeneityProfile::homogeneous_5g()),
    )
    .run();

    assert_records_bit_identical(&legacy, &hetero.log, "straggler sync vs legacy");
    assert!(
        hetero.total_virtual_seconds > 2.0 * homog.total_virtual_seconds,
        "stragglers should dominate the barrier: {} vs {}",
        hetero.total_virtual_seconds,
        homog.total_virtual_seconds
    );
}

#[test]
fn buffered_async_beats_sync_tta_on_straggler_cohort() {
    // The acceptance scenario: a cohort with hard stragglers. The sync
    // barrier pays the slowest client every round; FedBuff keeps fast
    // clients cycling and down-weights stale uploads, so it reaches the
    // same accuracy earlier on the virtual clock.
    let bundle = build(Workload::MnistLike, Scale::Smoke, 5);
    let mut cfg = base_cfg(&bundle, 5);
    cfg.rounds = 12;
    let stragglers = HeterogeneityProfile::Stragglers {
        fraction: 0.4,
        slowdown: 20.0,
        jitter: 0.05,
    };

    let sync = Simulator::new(
        bundle.model.as_ref(),
        &bundle.data,
        FedAvg::new(),
        SyncBarrier,
        SimConfig::new(cfg, stragglers),
    )
    .run();
    let cohort = fedbiad::fl::round::cohort_size(bundle.data.num_clients(), cfg.client_fraction);
    let buffered = Simulator::new(
        bundle.model.as_ref(),
        &bundle.data,
        FedAvg::new(),
        FedBuff::new((cohort / 2).max(1), cohort),
        SimConfig::new(cfg, stragglers),
    )
    .run();

    // A target both runs clear comfortably.
    let final_sync = sync.log.records.last().unwrap().test_acc;
    let final_buf = buffered.log.records.last().unwrap().test_acc;
    let target = 0.9 * final_sync.min(final_buf);
    let tta_sync = sync.time_to_accuracy(target).expect("sync reaches target");
    let tta_buf = buffered
        .time_to_accuracy(target)
        .expect("fedbuff reaches target");
    assert!(
        tta_buf < tta_sync,
        "buffered-async should win TTA under stragglers: {tta_buf:.3}s vs {tta_sync:.3}s \
         (target {target:.3}, finals {final_buf:.3}/{final_sync:.3})"
    );

    let cm = CostModel::default();
    assert!(
        cm.agg_seconds == 0.0,
        "default agg cost is off-critical-path"
    );
}
