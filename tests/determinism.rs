//! Reproducibility contract: identical seeds give bit-identical experiment
//! logs regardless of rayon scheduling; different seeds differ.

use fedbiad::prelude::*;

fn run_once(seed: u64) -> ExperimentLog {
    let bundle = build(Workload::MnistLike, Scale::Smoke, seed);
    let cfg = ExperimentConfig {
        rounds: 5,
        client_fraction: 0.4,
        seed,
        train: bundle.train,
        eval_topk: 1,
        eval_every: 1,
        eval_max_samples: 0,
        agg: Default::default(),
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    };
    let algo = FedBiad::new(FedBiadConfig::paper(bundle.dropout_rate, 3));
    Experiment::new(bundle.model.as_ref(), &bundle.data, algo, cfg).run()
}

#[test]
fn same_seed_bitwise_identical() {
    let a = run_once(101);
    let b = run_once(101);
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(
            ra.test_acc.to_bits(),
            rb.test_acc.to_bits(),
            "round {}",
            ra.round
        );
        assert_eq!(ra.train_loss.to_bits(), rb.train_loss.to_bits());
        assert_eq!(ra.upload_bytes_mean, rb.upload_bytes_mean);
    }
}

#[test]
fn different_seed_differs() {
    let a = run_once(101);
    let b = run_once(202);
    let same = a
        .records
        .iter()
        .zip(&b.records)
        .all(|(x, y)| x.test_acc == y.test_acc && x.train_loss == y.train_loss);
    assert!(!same, "different seeds should produce different runs");
}

#[test]
fn workload_generation_is_seed_deterministic() {
    for w in Workload::all() {
        let a = build(w, Scale::Smoke, 7);
        let b = build(w, Scale::Smoke, 7);
        assert_eq!(a.data.num_clients(), b.data.num_clients());
        match (&a.data.clients[0], &b.data.clients[0]) {
            (ClientData::Image(x), ClientData::Image(y)) => assert_eq!(x.x, y.x),
            (ClientData::Text(x), ClientData::Text(y)) => assert_eq!(x.tokens, y.tokens),
            _ => panic!("mismatched kinds"),
        }
    }
}
