//! Differential suite pinning the batched execution engine to the
//! per-sample reference, **bit for bit**.
//!
//! The batched engine (`Model::loss_grad_batched` / `evaluate_batched` +
//! the `fedbiad-tensor` GEMM kernels) is the default path of every local
//! update and evaluation since the workspace-arena PR. Its contract is
//! that batching changes *throughput only*: every gradient, loss and
//! accuracy is bit-identical to the sequential per-sample path
//! (`ReferencePath` forces that path for the same architecture).
//!
//! Two layers of coverage:
//!  * model-level: one mini-batch drawn exactly like a client's first
//!    local iteration, gradients compared bitwise;
//!  * experiment-level: full 2-round federated runs (the fig2 workloads —
//!    MNIST-like MLP and PTB-like LSTM — under FedAvg and FedBIAD),
//!    entire logs compared bitwise.

use fedbiad::nn::model::ReferencePath;
use fedbiad::nn::Batch;
use fedbiad::prelude::*;
use fedbiad::tensor::rng::{stream, StreamTag};
use fedbiad::tensor::Workspace;
use rand::Rng;

/// Draw one training mini-batch the way `fl::client` does and compare
/// both engines' losses and gradients bitwise.
fn assert_model_level_bitwise(workload: Workload) {
    let bundle = build(workload, Scale::Smoke, 11);
    let model = bundle.model.as_ref();
    let params = model.init_params(&mut stream(11, StreamTag::Init, 0, 0));
    let mut rng = stream(11, StreamTag::Batch, 0, 0);
    let data = &bundle.data.clients[0];
    let mut ws = Workspace::new();

    let (loss_ref, loss_bat, grads_ref, grads_bat, eval_ref, eval_bat) = match data {
        ClientData::Image(set) => {
            let idx: Vec<usize> = (0..bundle.train.batch_size.min(set.len()))
                .map(|_| rng.gen_range(0..set.len()))
                .collect();
            let mut bx = Vec::new();
            let mut by = Vec::new();
            set.gather(&idx, &mut bx, &mut by);
            let batch = Batch::Dense {
                x: &bx,
                y: &by,
                dim: set.dim,
            };
            let mut gr = params.zeros_like();
            let lr = model.loss_grad(&params, &batch, &mut gr);
            let mut gb = params.zeros_like();
            let lb = model.loss_grad_batched(&params, &batch, &mut gb, &mut ws);
            let er = model.evaluate(&params, &batch, bundle.eval_topk);
            let eb = model.evaluate_batched(&params, &batch, bundle.eval_topk, &mut ws);
            (lr, lb, gr, gb, er, eb)
        }
        ClientData::Text(set) => {
            let n = set.num_windows();
            let idx: Vec<usize> = (0..bundle.train.batch_size.min(n))
                .map(|_| rng.gen_range(0..n))
                .collect();
            let windows: Vec<&[u32]> = idx.iter().map(|&i| set.window(i)).collect();
            let batch = Batch::Seq { windows: &windows };
            let mut gr = params.zeros_like();
            let lr = model.loss_grad(&params, &batch, &mut gr);
            let mut gb = params.zeros_like();
            let lb = model.loss_grad_batched(&params, &batch, &mut gb, &mut ws);
            let er = model.evaluate(&params, &batch, bundle.eval_topk);
            let eb = model.evaluate_batched(&params, &batch, bundle.eval_topk, &mut ws);
            (lr, lb, gr, gb, er, eb)
        }
    };

    assert_eq!(
        loss_ref.to_bits(),
        loss_bat.to_bits(),
        "{workload:?}: loss {loss_ref} vs {loss_bat}"
    );
    for (i, (a, b)) in grads_ref
        .flatten()
        .iter()
        .zip(grads_bat.flatten().iter())
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{workload:?}: grad[{i}] {a} vs {b}"
        );
    }
    assert_eq!(eval_ref.loss_sum.to_bits(), eval_bat.loss_sum.to_bits());
    assert_eq!(
        (eval_ref.correct, eval_ref.count),
        (eval_bat.correct, eval_bat.count)
    );
}

#[test]
fn mlp_batched_gradients_match_per_sample_bitwise() {
    assert_model_level_bitwise(Workload::MnistLike);
}

#[test]
fn lstm_batched_gradients_match_per_sample_bitwise() {
    assert_model_level_bitwise(Workload::PtbLike);
}

/// Run 2 federated rounds twice — once with the batched engine (the
/// default) and once with the reference path forced — and require the
/// logs to agree bitwise on every deterministic field.
fn assert_experiment_level_bitwise(workload: Workload, fedbiad: bool) {
    let bundle = build(workload, Scale::Smoke, 4242);
    let cfg = ExperimentConfig {
        rounds: 2,
        client_fraction: 0.5,
        seed: 4242,
        train: bundle.train,
        eval_topk: bundle.eval_topk,
        eval_every: 1,
        eval_max_samples: 0,
        agg: Default::default(),
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    };
    let run = |model: &dyn Model| -> ExperimentLog {
        if fedbiad {
            let algo = FedBiad::new(FedBiadConfig::paper(bundle.dropout_rate, 1));
            Experiment::new(model, &bundle.data, algo, cfg).run()
        } else {
            Experiment::new(model, &bundle.data, FedAvg::new(), cfg).run()
        }
    };
    let batched = run(bundle.model.as_ref());
    let reference = run(&ReferencePath(bundle.model.as_ref()));

    assert_eq!(batched.records.len(), reference.records.len());
    for (b, r) in batched.records.iter().zip(&reference.records) {
        assert_eq!(
            b.train_loss.to_bits(),
            r.train_loss.to_bits(),
            "{workload:?} fedbiad={fedbiad} round {}: train loss",
            b.round
        );
        assert_eq!(
            b.test_loss.to_bits(),
            r.test_loss.to_bits(),
            "{workload:?} fedbiad={fedbiad} round {}: test loss",
            b.round
        );
        assert_eq!(
            b.test_acc.to_bits(),
            r.test_acc.to_bits(),
            "{workload:?} fedbiad={fedbiad} round {}: test acc",
            b.round
        );
        assert_eq!(b.upload_bytes_mean, r.upload_bytes_mean);
        assert_eq!(b.upload_bytes_max, r.upload_bytes_max);
        assert_eq!(b.download_bytes, r.download_bytes);
    }
}

#[test]
fn fig2_mlp_experiment_is_bitwise_engine_invariant() {
    assert_experiment_level_bitwise(Workload::MnistLike, false);
    assert_experiment_level_bitwise(Workload::MnistLike, true);
}

#[test]
fn fig2_lstm_experiment_is_bitwise_engine_invariant() {
    assert_experiment_level_bitwise(Workload::PtbLike, false);
    assert_experiment_level_bitwise(Workload::PtbLike, true);
}
