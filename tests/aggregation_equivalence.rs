//! Differential suite for the sharded streaming aggregation engine:
//! streaming must be **bit-identical** to the retained dense reference —
//! across every `ZeroMode`, both upload kinds, all five compressors,
//! shard sizes from 1 KiB up to ≥ the whole model, and 1/2/8 worker
//! threads — plus a 2-round fig2-style end-to-end run and the
//! buffered-async / deadline policy merge paths.
//!
//! The suite honours `FEDBIAD_SHARD_KB` (CI's tiny-shard matrix leg): a
//! value there is added to the tested shard-size set.

use fedbiad::compress::dgc::Dgc;
use fedbiad::compress::fedpaq::FedPaq;
use fedbiad::compress::none::NoCompression;
use fedbiad::compress::signsgd::SignSgd;
use fedbiad::compress::stc::Stc;
use fedbiad::compress::{codec, ClientState, Compressor};
use fedbiad::core::combo::sketch_masked_weights;
use fedbiad::core::pattern::{keep_count, DropPattern};
use fedbiad::fl::aggregate::{
    aggregate_deltas, aggregate_weights, arena_churn, merge_staleness_weighted, AggSettings,
    RobustKind, StalenessUpload, ZeroMode,
};
use fedbiad::fl::upload::{Upload, UploadBody, UploadKind};
use fedbiad::fl::workload::{build, Scale, Workload};
use fedbiad::nn::mask::BitVec;
use fedbiad::nn::mlp::MlpModel;
use fedbiad::nn::{CoverageMask, Model, ModelMask, ParamSet};
use fedbiad::prelude::*;
use fedbiad::tensor::rng::{stream, StreamTag};
use rand::Rng;
use std::sync::Mutex;

/// Tests in this binary toggle the process-wide `RAYON_NUM_THREADS`; they
/// must not interleave (same contract as `tests/thread_determinism.rs`).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn env_lock() -> std::sync::MutexGuard<'static, ()> {
    // A panicking sibling test poisons the lock; the env var itself is
    // still consistent, so recover rather than cascade failures.
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Shard sizes under test: tiny (many ragged boundaries), the default,
/// and one at least as large as any test model (single-shard case) —
/// plus whatever CI injects via `FEDBIAD_SHARD_KB` (its tiny-shard
/// matrix leg sets 1, the minimum, which is deliberately *not* in the
/// built-in set so the leg adds coverage instead of repeating it).
fn shard_kbs() -> Vec<u32> {
    let mut kbs = vec![2, 64, 4096];
    // Validated parse: a CI leg exporting a broken value must fail the
    // suite loudly, not silently test the built-in set only.
    match fedbiad_fl::aggregate::env_shard_kb() {
        Ok(Some(kb)) => {
            if !kbs.contains(&kb) {
                kbs.push(kb);
            }
        }
        Ok(None) => {}
        Err(e) => panic!("invalid FEDBIAD_SHARD_KB: {e}"),
    }
    kbs
}

fn assert_params_bit_identical(a: &ParamSet, b: &ParamSet, what: &str) {
    let (fa, fb) = (a.flatten(), b.flatten());
    assert_eq!(fa.len(), fb.len(), "{what}: param count");
    for (i, (x, y)) in fa.iter().zip(&fb).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: flat element {i}: {x} vs {y}"
        );
    }
}

/// A small-but-multi-entry model (MLP 23→17→5: ragged shapes, biases).
fn test_model() -> MlpModel {
    MlpModel::new(23, 17, 5)
}

fn init_params(seed: u64) -> ParamSet {
    test_model().init_params(&mut stream(seed, StreamTag::Init, 0, 0))
}

fn perturbed(global: &ParamSet, seed: u64) -> ParamSet {
    let mut rng = stream(seed, StreamTag::Init, 1, seed);
    let mut flat = global.flatten();
    for v in &mut flat {
        *v += rng.gen_range(-0.5f32..0.5);
    }
    let mut p = global.zeros_like();
    p.unflatten_from(&flat);
    p
}

/// One masked-weights upload per client, cycling through every coverage
/// shape (row pattern, rows×cols, elements, full, empty rows).
fn weights_uploads(global: &ParamSet, clients: usize) -> Vec<(f32, Upload)> {
    let j = global.num_row_units();
    (0..clients)
        .map(|k| {
            let params = perturbed(global, 100 + k as u64);
            let mut rng = stream(7, StreamTag::Pattern, 0, k as u64);
            let mask = match k % 5 {
                0 => ModelMask::full(&params),
                1 => {
                    let pat = DropPattern::sample_global(j, keep_count(j, 0.4), &mut rng);
                    pat.to_mask(&params)
                }
                2 => ModelMask {
                    per_entry: (0..params.num_entries())
                        .map(|e| {
                            let (rows, cols) = (params.mat(e).rows(), params.mat(e).cols());
                            let mut rb = BitVec::new(rows, false);
                            let mut cb = BitVec::new(cols, false);
                            for r in 0..rows {
                                rb.set(r, rng.gen_bool(0.7));
                            }
                            for c in 0..cols {
                                cb.set(c, rng.gen_bool(0.7));
                            }
                            CoverageMask::RowsCols { rows: rb, cols: cb }
                        })
                        .collect(),
                },
                3 => ModelMask {
                    per_entry: (0..params.num_entries())
                        .map(|e| {
                            let n = params.mat(e).len();
                            let mut bits = BitVec::new(n, false);
                            for i in 0..n {
                                bits.set(i, rng.gen_bool(0.5));
                            }
                            CoverageMask::Elements(bits)
                        })
                        .collect(),
                },
                _ => {
                    // One client with *empty* row coverage everywhere.
                    ModelMask {
                        per_entry: (0..params.num_entries())
                            .map(|e| CoverageMask::Rows(BitVec::new(params.mat(e).rows(), false)))
                            .collect(),
                    }
                }
            };
            ((k + 1) as f32 * 3.0, Upload::masked_weights(params, mask))
        })
        .collect()
}

/// The five compressors at configurations that hit every payload kind.
fn compressors() -> Vec<(&'static str, Box<dyn Compressor>)> {
    vec![
        ("none", Box::new(NoCompression) as Box<dyn Compressor>),
        (
            "dgc",
            Box::new(Dgc {
                keep_fraction: 0.25,
                momentum: 0.9,
                warmup_rounds: 0,
            }),
        ),
        ("signsgd", Box::new(SignSgd::default())),
        ("stc", Box::new(Stc { keep_fraction: 0.3 })),
        ("fedpaq", Box::new(FedPaq::paper())),
    ]
}

/// Delta uploads from each compressor's *real* payload, as both the dense
/// decoded twin and the actual wire-encoded frame.
fn delta_upload_pair(global: &ParamSet, comp: &dyn Compressor, k: u64) -> (Upload, Upload) {
    let trained = perturbed(global, 300 + k);
    let fg = global.flatten();
    let delta: Vec<f32> = trained
        .flatten()
        .iter()
        .zip(&fg)
        .map(|(a, b)| a - b)
        .collect();
    let mut st = ClientState::default();
    let mut rng = stream(9, StreamTag::Compress, 0, k);
    let c = comp.compress(&mut st, &delta, 0, &mut rng);

    let mut dparams = global.zeros_like();
    dparams.unflatten_from(&c.decoded);
    let dense = Upload {
        kind: UploadKind::Delta,
        coverage: ModelMask::full(global),
        wire_bytes: c.wire_bytes,
        body: UploadBody::Dense(dparams),
    };
    let wire = Upload::wire(
        UploadKind::Delta,
        codec::encode_delta(&c.payload),
        ModelMask::full(global),
        c.wire_bytes,
    );
    (dense, wire)
}

/// Sketched masked-weights uploads (the Fig. 5 combo): dense
/// reconstruction twin + real wire frame, per compressor.
fn combo_upload_pair(global: &ParamSet, comp: &dyn Compressor, k: u64) -> (Upload, Upload) {
    let j = global.num_row_units();
    let mut prng = stream(11, StreamTag::Pattern, 1, k);
    let pat = DropPattern::sample_global(j, keep_count(j, 0.5), &mut prng);
    let mask = pat.to_mask(global);
    let mut masked_u = perturbed(global, 500 + k);
    mask.apply(&mut masked_u);

    // Two independent sketch states: the dense and wire paths must see
    // identical compressor state.
    let mut rng_a = stream(13, StreamTag::Compress, 2, k);
    let mut rng_b = stream(13, StreamTag::Compress, 2, k);
    let mut st_a = ClientState::default();
    let mut st_b = ClientState::default();
    let out_a = sketch_masked_weights(
        comp, &mut st_a, &masked_u, global, &mask, 0, &mut rng_a, true,
    );
    let out_b = sketch_masked_weights(
        comp, &mut st_b, &masked_u, global, &mask, 0, &mut rng_b, false,
    );
    let overhead = mask.wire_bytes(&masked_u) - mask.kept_params(&masked_u) as u64 * 4;
    let wire_bytes = out_a.payload_bytes + overhead;
    let dense = Upload {
        kind: UploadKind::Weights,
        body: UploadBody::Dense(out_a.reconstructed.expect("dense twin")),
        coverage: mask.clone(),
        wire_bytes,
    };
    let wire = Upload::wire(
        UploadKind::Weights,
        codec::encode_weights_delta(&mask, &out_b.payload),
        mask,
        wire_bytes,
    );
    (dense, wire)
}

/// Run the dense reference over `reference_uploads` (dense bodies) and
/// the streaming engine over `uploads` under every shard size and 1/2/8
/// threads; everything must agree bitwise.
fn assert_weights_equivalence(
    uploads: &[(f32, Upload)],
    reference_uploads: &[(f32, Upload)],
    what: &str,
) {
    let _guard = env_lock();
    let global0 = init_params(1);
    let ups: Vec<(f32, &Upload)> = uploads.iter().map(|(w, u)| (*w, u)).collect();
    let ref_ups: Vec<(f32, &Upload)> = reference_uploads.iter().map(|(w, u)| (*w, u)).collect();
    for mode in [
        ZeroMode::ZerosPull,
        ZeroMode::HoldersOnly,
        ZeroMode::StaleFill,
    ] {
        let mut reference = global0.clone();
        aggregate_weights(&mut reference, &ref_ups, mode, AggSettings::default()).unwrap();
        for kb in shard_kbs() {
            for threads in ["1", "2", "8"] {
                std::env::set_var("RAYON_NUM_THREADS", threads);
                let mut g = global0.clone();
                aggregate_weights(&mut g, &ups, mode, AggSettings::sharded(kb)).unwrap();
                assert_params_bit_identical(
                    &g,
                    &reference,
                    &format!("{what}/{mode:?}/{kb}KB/{threads}t"),
                );
            }
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

#[test]
fn masked_weights_all_modes_shards_threads() {
    let global = init_params(1);
    let uploads = weights_uploads(&global, 6);
    // Dense bodies through the streaming engine (on-the-fly encode)…
    assert_weights_equivalence(&uploads, &uploads, "dense-body");
    // …and real wire bodies, as streaming clients produce them.
    let wired: Vec<(f32, Upload)> = uploads
        .iter()
        .map(|(w, u)| {
            let msg = codec::encode_weights(u.params(), &u.coverage);
            assert_eq!(msg.body_bytes(), u.wire_bytes, "byte accounting");
            (
                *w,
                Upload::wire(UploadKind::Weights, msg, u.coverage.clone(), u.wire_bytes),
            )
        })
        .collect();
    assert_weights_equivalence(&wired, &uploads, "wire-body");
}

#[test]
fn combo_weights_every_compressor() {
    let global = init_params(2);
    for (name, comp) in compressors() {
        let pairs: Vec<(Upload, Upload)> = (0..4)
            .map(|k| combo_upload_pair(&global, comp.as_ref(), k))
            .collect();
        // The wire frame must decode to exactly the dense reconstruction.
        let dense_ups: Vec<(f32, Upload)> =
            pairs.iter().map(|(d, _)| (2.0f32, d.clone())).collect();
        assert_weights_equivalence(&dense_ups, &dense_ups, &format!("combo/{name}/dense"));
        let wire_ups: Vec<(f32, Upload)> = pairs.iter().map(|(_, w)| (2.0f32, w.clone())).collect();
        // Compare wire-streaming directly against dense-reference.
        let _guard = env_lock();
        let ups_d: Vec<(f32, &Upload)> = dense_ups.iter().map(|(w, u)| (*w, u)).collect();
        let ups_w: Vec<(f32, &Upload)> = wire_ups.iter().map(|(w, u)| (*w, u)).collect();
        for mode in [
            ZeroMode::ZerosPull,
            ZeroMode::HoldersOnly,
            ZeroMode::StaleFill,
        ] {
            let mut reference = global.clone();
            aggregate_weights(&mut reference, &ups_d, mode, AggSettings::default()).unwrap();
            for kb in shard_kbs() {
                let mut g = global.clone();
                aggregate_weights(&mut g, &ups_w, mode, AggSettings::sharded(kb)).unwrap();
                assert_params_bit_identical(&g, &reference, &format!("combo/{name}/{mode:?}/{kb}"));
            }
        }
    }
}

#[test]
fn delta_uploads_every_compressor() {
    let _guard = env_lock();
    let global = init_params(3);
    for (name, comp) in compressors() {
        let pairs: Vec<(Upload, Upload)> = (0..5)
            .map(|k| delta_upload_pair(&global, comp.as_ref(), k))
            .collect();
        let ups_d: Vec<(f32, &Upload)> = pairs
            .iter()
            .enumerate()
            .map(|(i, (d, _))| ((i + 1) as f32, d))
            .collect();
        let ups_w: Vec<(f32, &Upload)> = pairs
            .iter()
            .enumerate()
            .map(|(i, (_, w))| ((i + 1) as f32, w))
            .collect();
        let mut reference = global.clone();
        aggregate_deltas(&mut reference, &ups_d, AggSettings::default()).unwrap();
        for kb in shard_kbs() {
            for threads in ["1", "2", "8"] {
                std::env::set_var("RAYON_NUM_THREADS", threads);
                let mut g = global.clone();
                aggregate_deltas(&mut g, &ups_w, AggSettings::sharded(kb)).unwrap();
                assert_params_bit_identical(
                    &g,
                    &reference,
                    &format!("delta/{name}/{kb}KB/{threads}t"),
                );
            }
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

#[test]
fn staleness_merge_matches_dense() {
    let _guard = env_lock();
    let global = init_params(4);
    // Mixed buffer: masked weights (with snapshots) and sketched deltas.
    let snapshots: Vec<ParamSet> = (0..3).map(|k| perturbed(&global, 700 + k)).collect();
    let weights = weights_uploads(&global, 3);
    let dgc = Dgc {
        keep_fraction: 0.25,
        momentum: 0.9,
        warmup_rounds: 0,
    };
    let (delta_dense, delta_wire) = delta_upload_pair(&global, &dgc, 9);

    let dense_items: Vec<StalenessUpload> = weights
        .iter()
        .zip(&snapshots)
        .map(|((w, u), s)| StalenessUpload {
            weight: *w as f64 / 1.5,
            upload: u,
            snapshot: Some(s),
        })
        .chain(std::iter::once(StalenessUpload {
            weight: 4.0,
            upload: &delta_dense,
            snapshot: None,
        }))
        .collect();
    let mut reference = global.clone();
    merge_staleness_weighted(&mut reference, &dense_items, 0.75, AggSettings::default()).unwrap();

    // Streaming twin: same weights, wire bodies where clients would
    // produce them.
    let wired: Vec<Upload> = weights
        .iter()
        .map(|(_, u)| {
            Upload::wire(
                UploadKind::Weights,
                codec::encode_weights(u.params(), &u.coverage),
                u.coverage.clone(),
                u.wire_bytes,
            )
        })
        .collect();
    for kb in shard_kbs() {
        for threads in ["1", "2", "8"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let items: Vec<StalenessUpload> = wired
                .iter()
                .zip(&weights)
                .zip(&snapshots)
                .map(|((u, (w, _)), s)| StalenessUpload {
                    weight: *w as f64 / 1.5,
                    upload: u,
                    snapshot: Some(s),
                })
                .chain(std::iter::once(StalenessUpload {
                    weight: 4.0,
                    upload: &delta_wire,
                    snapshot: None,
                }))
                .collect();
            let mut g = global.clone();
            merge_staleness_weighted(&mut g, &items, 0.75, AggSettings::sharded(kb)).unwrap();
            assert_params_bit_identical(&g, &reference, &format!("staleness/{kb}KB/{threads}t"));
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

#[test]
fn steady_state_streaming_allocates_nothing() {
    let _guard = env_lock();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let global0 = init_params(5);
    let uploads = weights_uploads(&global0, 4);
    let ups: Vec<(f32, &Upload)> = uploads.iter().map(|(w, u)| (*w, u)).collect();
    let run = |g0: &ParamSet| {
        let mut g = g0.clone();
        aggregate_weights(&mut g, &ups, ZeroMode::StaleFill, AggSettings::sharded(16)).unwrap();
        g
    };
    // Warm-up round populates the arena…
    let _ = run(&global0);
    let warm = arena_churn();
    // …after which repeated aggregations must not allocate data buffers.
    let mut g = global0.clone();
    for _ in 0..5 {
        g = run(&g);
    }
    assert_eq!(
        arena_churn(),
        warm,
        "steady-state streaming aggregation must be arena-served"
    );
    std::env::remove_var("RAYON_NUM_THREADS");
}

// ---- robust estimators: dense ≡ streaming ------------------------------

/// The non-mean estimator family under differential test. The trim
/// fraction and clip radius are chosen so both branches of each estimator
/// actually fire on the 7-client fixtures (k = 1 trims something, τ = 0.5
/// clips some uploads and passes others through).
fn robust_kinds() -> Vec<(&'static str, RobustKind)> {
    vec![
        ("trim", RobustKind::TrimmedMean { trim_frac: 0.2 }),
        ("median", RobustKind::CoordinateMedian),
        ("clip", RobustKind::NormClip { tau: 0.5 }),
    ]
}

/// Dense reference vs streaming under a robust estimator: every
/// `ZeroMode` × shard size × 1/2/8 threads must agree bitwise (the
/// tentpole pin: order statistics gather the same column bits in both
/// engines).
fn assert_robust_weights_equivalence(
    uploads: &[(f32, Upload)],
    reference_uploads: &[(f32, Upload)],
    robust: RobustKind,
    what: &str,
) {
    let _guard = env_lock();
    let global0 = init_params(1);
    let ups: Vec<(f32, &Upload)> = uploads.iter().map(|(w, u)| (*w, u)).collect();
    let ref_ups: Vec<(f32, &Upload)> = reference_uploads.iter().map(|(w, u)| (*w, u)).collect();
    for mode in [
        ZeroMode::ZerosPull,
        ZeroMode::HoldersOnly,
        ZeroMode::StaleFill,
    ] {
        let mut reference = global0.clone();
        aggregate_weights(
            &mut reference,
            &ref_ups,
            mode,
            AggSettings::default().with_robust(robust),
        )
        .unwrap();
        for kb in shard_kbs() {
            for threads in ["1", "2", "8"] {
                std::env::set_var("RAYON_NUM_THREADS", threads);
                let mut g = global0.clone();
                aggregate_weights(
                    &mut g,
                    &ups,
                    mode,
                    AggSettings::sharded(kb).with_robust(robust),
                )
                .unwrap();
                assert_params_bit_identical(
                    &g,
                    &reference,
                    &format!("{what}/{mode:?}/{kb}KB/{threads}t"),
                );
            }
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

#[test]
fn robust_weights_all_modes_shards_threads() {
    let global = init_params(1);
    // 7 clients cycle through every coverage shape, including the
    // all-empty-coverage client — partial participant sets per coordinate
    // exercise the trimmed-empty / empty-holder branches.
    let uploads = weights_uploads(&global, 7);
    let wired: Vec<(f32, Upload)> = uploads
        .iter()
        .map(|(w, u)| {
            let msg = codec::encode_weights(u.params(), &u.coverage);
            (
                *w,
                Upload::wire(UploadKind::Weights, msg, u.coverage.clone(), u.wire_bytes),
            )
        })
        .collect();
    for (name, robust) in robust_kinds() {
        assert_robust_weights_equivalence(
            &uploads,
            &uploads,
            robust,
            &format!("robust/{name}/dense-body"),
        );
        assert_robust_weights_equivalence(
            &wired,
            &uploads,
            robust,
            &format!("robust/{name}/wire-body"),
        );
    }
}

#[test]
fn robust_deltas_dense_vs_streaming() {
    let _guard = env_lock();
    let global = init_params(3);
    let dgc = Dgc {
        keep_fraction: 0.25,
        momentum: 0.9,
        warmup_rounds: 0,
    };
    for (cname, comp) in [
        ("none", &NoCompression as &dyn Compressor),
        ("dgc", &dgc as &dyn Compressor),
    ] {
        let pairs: Vec<(Upload, Upload)> = (0..6)
            .map(|k| delta_upload_pair(&global, comp, k))
            .collect();
        let ups_d: Vec<(f32, &Upload)> = pairs
            .iter()
            .enumerate()
            .map(|(i, (d, _))| ((i + 1) as f32, d))
            .collect();
        let ups_w: Vec<(f32, &Upload)> = pairs
            .iter()
            .enumerate()
            .map(|(i, (_, w))| ((i + 1) as f32, w))
            .collect();
        for (name, robust) in robust_kinds() {
            let mut reference = global.clone();
            aggregate_deltas(
                &mut reference,
                &ups_d,
                AggSettings::default().with_robust(robust),
            )
            .unwrap();
            for kb in shard_kbs() {
                for threads in ["1", "2", "8"] {
                    std::env::set_var("RAYON_NUM_THREADS", threads);
                    let mut g = global.clone();
                    aggregate_deltas(&mut g, &ups_w, AggSettings::sharded(kb).with_robust(robust))
                        .unwrap();
                    assert_params_bit_identical(
                        &g,
                        &reference,
                        &format!("robust-delta/{cname}/{name}/{kb}KB/{threads}t"),
                    );
                }
            }
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

#[test]
fn robust_staleness_merge_matches_dense() {
    let _guard = env_lock();
    let global = init_params(4);
    let snapshots: Vec<ParamSet> = (0..3).map(|k| perturbed(&global, 700 + k)).collect();
    let weights = weights_uploads(&global, 3);
    let dgc = Dgc {
        keep_fraction: 0.25,
        momentum: 0.9,
        warmup_rounds: 0,
    };
    let (delta_dense, delta_wire) = delta_upload_pair(&global, &dgc, 9);
    let wired: Vec<Upload> = weights
        .iter()
        .map(|(_, u)| {
            Upload::wire(
                UploadKind::Weights,
                codec::encode_weights(u.params(), &u.coverage),
                u.coverage.clone(),
                u.wire_bytes,
            )
        })
        .collect();
    for (name, robust) in robust_kinds() {
        let dense_items: Vec<StalenessUpload> = weights
            .iter()
            .zip(&snapshots)
            .map(|((w, u), s)| StalenessUpload {
                weight: *w as f64 / 1.5,
                upload: u,
                snapshot: Some(s),
            })
            .chain(std::iter::once(StalenessUpload {
                weight: 4.0,
                upload: &delta_dense,
                snapshot: None,
            }))
            .collect();
        let mut reference = global.clone();
        merge_staleness_weighted(
            &mut reference,
            &dense_items,
            0.75,
            AggSettings::default().with_robust(robust),
        )
        .unwrap();
        for kb in shard_kbs() {
            for threads in ["1", "2", "8"] {
                std::env::set_var("RAYON_NUM_THREADS", threads);
                let items: Vec<StalenessUpload> = wired
                    .iter()
                    .zip(&weights)
                    .zip(&snapshots)
                    .map(|((u, (w, _)), s)| StalenessUpload {
                        weight: *w as f64 / 1.5,
                        upload: u,
                        snapshot: Some(s),
                    })
                    .chain(std::iter::once(StalenessUpload {
                        weight: 4.0,
                        upload: &delta_wire,
                        snapshot: None,
                    }))
                    .collect();
                let mut g = global.clone();
                merge_staleness_weighted(
                    &mut g,
                    &items,
                    0.75,
                    AggSettings::sharded(kb).with_robust(robust),
                )
                .unwrap();
                assert_params_bit_identical(
                    &g,
                    &reference,
                    &format!("robust-staleness/{name}/{kb}KB/{threads}t"),
                );
            }
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

/// `trim_frac = 0` (and a cohort too small to trim) routes to the mean
/// engines verbatim, and an all-honest `norm_clip` round with a radius
/// larger than any delta passes every upload through untouched — both
/// must reproduce the historical weighted mean **bitwise**, dense and
/// streaming, which is what keeps the robust knob out of the golden
/// digests when it is configured but inactive.
#[test]
fn inactive_robust_settings_reproduce_the_mean_bitwise() {
    let _guard = env_lock();
    let global0 = init_params(6);
    let uploads = weights_uploads(&global0, 6);
    let ups: Vec<(f32, &Upload)> = uploads.iter().map(|(w, u)| (*w, u)).collect();
    let inactive = [
        ("trim0", RobustKind::TrimmedMean { trim_frac: 0.0 }),
        // ⌊0.12·6⌋ = 0: a cohort too small for the fraction to bite.
        ("trim-small", RobustKind::TrimmedMean { trim_frac: 0.12 }),
        ("clip-huge", RobustKind::NormClip { tau: 1e9 }),
    ];
    for mode in [
        ZeroMode::ZerosPull,
        ZeroMode::HoldersOnly,
        ZeroMode::StaleFill,
    ] {
        let mut mean = global0.clone();
        aggregate_weights(&mut mean, &ups, mode, AggSettings::default()).unwrap();
        for (name, robust) in inactive {
            for settings in [
                AggSettings::default().with_robust(robust),
                AggSettings::sharded(2).with_robust(robust),
                AggSettings::sharded(64).with_robust(robust),
            ] {
                let mut g = global0.clone();
                aggregate_weights(&mut g, &ups, mode, settings).unwrap();
                assert_params_bit_identical(
                    &g,
                    &mean,
                    &format!("inactive/{name}/{mode:?}/streaming={}", settings.streaming),
                );
            }
        }
    }
}

/// Satellite: elements whose holder set is empty — or emptied by the
/// cohort-level trim depth — keep the previous global value under the
/// robust engines, exactly like the mean engines' "no holders" rule.
/// Differential across ZeroModes and both engines.
#[test]
fn robust_empty_holder_sets_keep_previous_global() {
    let _guard = env_lock();
    let global = init_params(8);
    // Client 0 covers only row 0 of entry 0; clients 1 and 2 cover
    // nothing at all. Every covered coordinate has exactly one holder.
    let params = perturbed(&global, 901);
    let mask = ModelMask {
        per_entry: (0..params.num_entries())
            .map(|e| {
                let mut rb = BitVec::new(params.mat(e).rows(), false);
                if e == 0 {
                    rb.set(0, true);
                }
                CoverageMask::Rows(rb)
            })
            .collect(),
    };
    // Flat coverage indicator of client 0's mask (1.0 covered / 0.0 not).
    let coverage: Vec<f32> = {
        let mut ones = global.zeros_like();
        let n = ones.flatten().len();
        ones.unflatten_from(&vec![1.0f32; n]);
        mask.apply(&mut ones);
        ones.flatten()
    };
    assert!(coverage.iter().any(|&c| c != 0.0), "mask covers something");
    assert!(coverage.contains(&0.0), "mask leaves gaps");
    let uploads = [
        (3.0f32, Upload::masked_weights(params.clone(), mask)),
        (2.0f32, weights_uploads(&global, 5)[4].1.clone()),
        (1.0f32, weights_uploads(&global, 5)[4].1.clone()),
    ];
    let ups: Vec<(f32, &Upload)> = uploads.iter().map(|(w, u)| (*w, u)).collect();
    let engines = [AggSettings::default(), AggSettings::sharded(2)];

    // ⌊0.34·3⌋ = 1 trims one from each tail: the single-holder coordinates
    // trim *empty* and every uncovered coordinate has no holders at all —
    // under HoldersOnly/StaleFill the whole global must survive bitwise.
    let trim = RobustKind::TrimmedMean { trim_frac: 0.34 };
    for mode in [ZeroMode::HoldersOnly, ZeroMode::StaleFill] {
        for settings in engines {
            let mut g = global.clone();
            aggregate_weights(&mut g, &ups, mode, settings.with_robust(trim)).unwrap();
            assert_params_bit_identical(
                &g,
                &global,
                &format!("trim-empty/{mode:?}/streaming={}", settings.streaming),
            );
        }
    }
    // ZerosPull keeps all three uploads as exact zeros per coordinate, so
    // the global *does* move — pin dense ≡ streaming on the degenerate
    // coverage instead.
    let mut zp_dense = global.clone();
    aggregate_weights(
        &mut zp_dense,
        &ups,
        ZeroMode::ZerosPull,
        AggSettings::default().with_robust(trim),
    )
    .unwrap();
    let mut zp_stream = global.clone();
    aggregate_weights(
        &mut zp_stream,
        &ups,
        ZeroMode::ZerosPull,
        AggSettings::sharded(2).with_robust(trim),
    )
    .unwrap();
    assert_params_bit_identical(&zp_dense, &zp_stream, "trim-empty/ZerosPull");

    // Coordinate median under HoldersOnly: a single-holder coordinate's
    // median is that holder's value; no-holder coordinates keep g_prev.
    for settings in engines {
        let mut g = global.clone();
        aggregate_weights(
            &mut g,
            &ups,
            ZeroMode::HoldersOnly,
            settings.with_robust(RobustKind::CoordinateMedian),
        )
        .unwrap();
        let (gf, pf, g0) = (g.flatten(), params.flatten(), global.flatten());
        for j in 0..gf.len() {
            let expect = if coverage[j] != 0.0 { pf[j] } else { g0[j] };
            assert_eq!(
                gf[j].to_bits(),
                expect.to_bits(),
                "median holders flat {j} (covered={})",
                coverage[j] != 0.0
            );
        }
    }
}

// ---- end-to-end: full experiments, dense vs streaming ------------------

fn assert_logs_bit_identical(a: &ExperimentLog, b: &ExperimentLog, what: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{what}: rounds");
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(
            ra.train_loss.to_bits(),
            rb.train_loss.to_bits(),
            "{what}: train loss r{}",
            ra.round
        );
        assert_eq!(
            ra.test_loss.to_bits(),
            rb.test_loss.to_bits(),
            "{what}: test loss r{}",
            ra.round
        );
        assert_eq!(
            ra.test_acc.to_bits(),
            rb.test_acc.to_bits(),
            "{what}: test acc r{}",
            ra.round
        );
        assert_eq!(
            ra.upload_bytes_mean, rb.upload_bytes_mean,
            "{what}: upload bytes r{}",
            ra.round
        );
        assert_eq!(
            ra.upload_bytes_max, rb.upload_bytes_max,
            "{what}: max upload bytes r{}",
            ra.round
        );
        assert_eq!(
            ra.download_bytes, rb.download_bytes,
            "{what}: download bytes r{}",
            ra.round
        );
    }
}

fn e2e_cfg(bundle: &fedbiad::fl::workload::WorkloadBundle, streaming: bool) -> ExperimentConfig {
    ExperimentConfig {
        rounds: 2,
        client_fraction: 0.5,
        seed: 21,
        train: bundle.train,
        eval_topk: bundle.eval_topk,
        eval_every: 1,
        eval_max_samples: 200,
        agg: if streaming {
            AggSettings::sharded(1)
        } else {
            AggSettings::default()
        },
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    }
}

/// The fig2 motivation experiment, two rounds, dense vs streaming — the
/// whole vertical slice (client encode → wire → sharded reduce) must
/// reproduce the reference experiment bit for bit, for a dropout method
/// (FedBIAD, `Weights`) and a sketched method (FedAvg+DGC-style `Delta`).
#[test]
fn fig2_two_round_end_to_end_dense_vs_streaming() {
    let bundle = build(Workload::MnistLike, Scale::Smoke, 21);
    let run_fedbiad = |streaming: bool| {
        let algo = FedBiad::new(FedBiadConfig::paper(bundle.dropout_rate, 1));
        Experiment::new(
            bundle.model.as_ref(),
            &bundle.data,
            algo,
            e2e_cfg(&bundle, streaming),
        )
        .run()
    };
    assert_logs_bit_identical(&run_fedbiad(false), &run_fedbiad(true), "fig2/fedbiad");

    let run_sketched = |streaming: bool| {
        let algo = FedAvg::with_sketch(std::sync::Arc::new(Dgc::paper()));
        Experiment::new(
            bundle.model.as_ref(),
            &bundle.data,
            algo,
            e2e_cfg(&bundle, streaming),
        )
        .run()
    };
    assert_logs_bit_identical(&run_sketched(false), &run_sketched(true), "fig2/fedavg+dgc");
}

/// The simulator's three policy merge paths (sync barrier, deadline
/// over-selection, FedBuff buffered-async staleness weighting) under
/// streaming vs dense.
#[test]
fn sim_policies_dense_vs_streaming() {
    let bundle = build(Workload::MnistLike, Scale::Smoke, 31);
    let mk_cfg = |streaming: bool| {
        let mut cfg = e2e_cfg(&bundle, streaming);
        cfg.seed = 31;
        SimConfig::new(
            cfg,
            HeterogeneityProfile::Stragglers {
                fraction: 0.3,
                slowdown: 15.0,
                jitter: 0.1,
            },
        )
    };
    let run = |policy: &str, streaming: bool| -> SimReport {
        let algo = FedBiad::new(FedBiadConfig::paper(bundle.dropout_rate, 1));
        match policy {
            "sync" => Simulator::new(
                bundle.model.as_ref(),
                &bundle.data,
                algo,
                SyncBarrier,
                mk_cfg(streaming),
            )
            .run(),
            "deadline" => Simulator::new(
                bundle.model.as_ref(),
                &bundle.data,
                algo,
                DeadlineOverSelect::new(1.5, 200.0),
                mk_cfg(streaming),
            )
            .run(),
            _ => Simulator::new(
                bundle.model.as_ref(),
                &bundle.data,
                algo,
                FedBuff::new(2, 3),
                mk_cfg(streaming),
            )
            .run(),
        }
    };
    for policy in ["sync", "deadline", "fedbuff"] {
        let dense = run(policy, false);
        let streaming = run(policy, true);
        assert_logs_bit_identical(&dense.log, &streaming.log, &format!("sim/{policy}"));
        assert_eq!(
            dense.round_end_seconds, streaming.round_end_seconds,
            "sim/{policy}: virtual clock"
        );
    }
}
