//! End-to-end integration tests: every algorithm × both model families,
//! exercised through the facade crate exactly as a downstream user would.

use fedbiad::compress::dgc::Dgc;
use fedbiad::prelude::*;
use std::sync::Arc;

fn smoke_cfg(rounds: usize, bundle: &fedbiad::fl::workload::WorkloadBundle) -> ExperimentConfig {
    ExperimentConfig {
        rounds,
        client_fraction: 0.3,
        seed: 11,
        train: bundle.train,
        eval_topk: bundle.eval_topk,
        eval_every: 1,
        eval_max_samples: 0,
        agg: Default::default(),
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    }
}

#[test]
fn every_algorithm_runs_on_images() {
    let bundle = build(Workload::MnistLike, Scale::Smoke, 11);
    let cfg = smoke_cfg(4, &bundle);
    let p = bundle.dropout_rate;
    let model = bundle.model.as_ref();
    let full = {
        use fedbiad::tensor::rng::{stream, StreamTag};
        model
            .init_params(&mut stream(11, StreamTag::Init, 0, 0))
            .total_bytes()
    };

    let logs = vec![
        Experiment::new(model, &bundle.data, FedAvg::new(), cfg).run(),
        Experiment::new(model, &bundle.data, FedDrop::new(p), cfg).run(),
        Experiment::new(model, &bundle.data, Afd::new(p), cfg).run(),
        Experiment::new(model, &bundle.data, FedMp::new(p), cfg).run(),
        Experiment::new(model, &bundle.data, Fjord::new(p), cfg).run(),
        Experiment::new(model, &bundle.data, HeteroFl::new(p), cfg).run(),
        Experiment::new(
            model,
            &bundle.data,
            FedBiad::new(FedBiadConfig::paper(p, 3)),
            cfg,
        )
        .run(),
    ];
    for log in &logs {
        assert_eq!(log.records.len(), 4, "{}", log.method);
        assert!(
            log.records.iter().all(|r| r.test_acc.is_finite()),
            "{}",
            log.method
        );
        assert!(log.mean_upload_bytes() > 0, "{}", log.method);
        assert!(log.mean_upload_bytes() <= full, "{}", log.method);
    }
    // Every dropout method uploads strictly less than FedAvg.
    let fedavg_up = logs[0].mean_upload_bytes();
    for log in &logs[1..] {
        assert!(
            log.mean_upload_bytes() < fedavg_up,
            "{} not compressed",
            log.method
        );
    }
}

#[test]
fn every_algorithm_runs_on_text() {
    let bundle = build(Workload::PtbLike, Scale::Smoke, 13);
    let cfg = smoke_cfg(3, &bundle);
    let p = bundle.dropout_rate;
    let model = bundle.model.as_ref();

    let logs = vec![
        Experiment::new(model, &bundle.data, FedAvg::new(), cfg).run(),
        Experiment::new(model, &bundle.data, FedDrop::new(p), cfg).run(),
        Experiment::new(model, &bundle.data, Afd::new(p), cfg).run(),
        Experiment::new(model, &bundle.data, Fjord::new(p), cfg).run(),
        Experiment::new(model, &bundle.data, HeteroFl::new(p), cfg).run(),
        Experiment::new(
            model,
            &bundle.data,
            FedBiad::new(FedBiadConfig::paper(p, 2)),
            cfg,
        )
        .run(),
    ];
    for log in &logs {
        assert!(
            log.records.last().unwrap().test_acc >= 0.0,
            "{}",
            log.method
        );
        assert!(
            log.records.last().unwrap().test_loss.is_finite(),
            "{}",
            log.method
        );
    }
    // Structural claim of the paper: FedBIAD's save ratio on an RNN model
    // beats FedDrop's (recurrent rows are droppable).
    let feddrop_up = logs[1].mean_upload_bytes();
    let fedbiad_up = logs.last().unwrap().mean_upload_bytes();
    assert!(
        fedbiad_up < feddrop_up,
        "FedBIAD {fedbiad_up} should upload less than FedDrop {feddrop_up} on LSTM"
    );
}

#[test]
fn sketched_methods_run_and_compress_hard() {
    use fedbiad::compress::fedpaq::FedPaq;
    use fedbiad::compress::signsgd::SignSgd;
    use fedbiad::compress::stc::Stc;
    let bundle = build(Workload::MnistLike, Scale::Smoke, 17);
    let cfg = smoke_cfg(3, &bundle);
    let model = bundle.model.as_ref();
    let full = Experiment::new(model, &bundle.data, FedAvg::new(), cfg)
        .run()
        .mean_upload_bytes() as f64;

    let paq = Experiment::new(
        model,
        &bundle.data,
        FedAvg::with_sketch(Arc::new(FedPaq::paper())),
        cfg,
    )
    .run();
    let sgn = Experiment::new(
        model,
        &bundle.data,
        FedAvg::with_sketch(Arc::new(SignSgd::default())),
        cfg,
    )
    .run();
    let stc = Experiment::new(
        model,
        &bundle.data,
        FedAvg::with_sketch(Arc::new(Stc::paper())),
        cfg,
    )
    .run();
    let dgc_cfg = ExperimentConfig { rounds: 7, ..cfg };
    let dgc = Experiment::new(
        model,
        &bundle.data,
        FedAvg::with_sketch(Arc::new(Dgc::paper())),
        dgc_cfg,
    )
    .run();

    // Save-ratio ordering of Table II: FedPAQ < SignSGD < STC ≈ DGC.
    let r = |log: &ExperimentLog| full / log.mean_upload_bytes() as f64;
    assert!(r(&paq) > 3.5 && r(&paq) < 4.5, "fedpaq {}", r(&paq));
    assert!(r(&sgn) > 25.0, "signsgd {}", r(&sgn));
    assert!(r(&stc) > 100.0, "stc {}", r(&stc));
    // DGC ramps sparsity over 4 warm-up rounds; judge the steady state.
    let per_round = full / dgc.records.last().unwrap().upload_bytes_mean as f64;
    assert!(per_round > 100.0, "dgc steady-state save {per_round}");
}

#[test]
fn fedbiad_with_dgc_combination_runs() {
    let bundle = build(Workload::PtbLike, Scale::Smoke, 19);
    let cfg = smoke_cfg(3, &bundle);
    let model = bundle.model.as_ref();
    let p = bundle.dropout_rate;
    let plain = Experiment::new(
        model,
        &bundle.data,
        FedBiad::new(FedBiadConfig::paper(p, 2)),
        cfg,
    )
    .run();
    let combo = Experiment::new(
        model,
        &bundle.data,
        FedBiad::with_sketch(FedBiadConfig::paper(p, 2), Arc::new(Dgc::paper())),
        cfg,
    )
    .run();
    assert_eq!(combo.method, "fedbiad+dgc");
    // After warm-up DGC compresses far below plain masked uploads; even
    // with 3 warm-up-heavy rounds the mean must not exceed plain.
    assert!(combo.mean_upload_bytes() <= plain.mean_upload_bytes());
    assert!(combo.records.iter().all(|r| r.test_loss.is_finite()));
}
