//! Fast smoke coverage: every one of the six baselines runs for 2 rounds
//! at `Scale::Smoke` and produces finite losses plus sane upload-byte
//! accounting. This is the cheap canary that catches "a baseline panics or
//! stops accounting bytes" long before the heavier convergence suites.

use fedbiad::prelude::*;

fn smoke_cfg(bundle: &fedbiad::fl::workload::WorkloadBundle, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        rounds: 2,
        client_fraction: 0.3,
        seed,
        train: bundle.train,
        eval_topk: bundle.eval_topk,
        eval_every: 1,
        eval_max_samples: 0,
        agg: Default::default(),
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    }
}

#[test]
fn all_six_baselines_smoke_on_images() {
    let bundle = build(Workload::MnistLike, Scale::Smoke, 71);
    let cfg = smoke_cfg(&bundle, 71);
    let p = bundle.dropout_rate;
    let model = bundle.model.as_ref();
    let full_bytes = {
        use fedbiad::tensor::rng::{stream, StreamTag};
        model
            .init_params(&mut stream(71, StreamTag::Init, 0, 0))
            .total_bytes()
    };

    let logs = vec![
        Experiment::new(model, &bundle.data, FedAvg::new(), cfg).run(),
        Experiment::new(model, &bundle.data, FedDrop::new(p), cfg).run(),
        Experiment::new(model, &bundle.data, Afd::new(p), cfg).run(),
        Experiment::new(model, &bundle.data, FedMp::new(p), cfg).run(),
        Experiment::new(model, &bundle.data, Fjord::new(p), cfg).run(),
        Experiment::new(model, &bundle.data, HeteroFl::new(p), cfg).run(),
    ];

    let names: Vec<String> = logs.iter().map(|l| l.method.clone()).collect();
    assert_eq!(names.len(), 6);
    for log in &logs {
        assert_eq!(log.records.len(), 2, "{}: wrong round count", log.method);
        for r in &log.records {
            assert!(
                r.train_loss.is_finite(),
                "{} round {}: train loss",
                log.method,
                r.round
            );
            assert!(
                r.test_loss.is_finite(),
                "{} round {}: test loss",
                log.method,
                r.round
            );
            assert!(
                r.test_acc.is_finite(),
                "{} round {}: test acc",
                log.method,
                r.round
            );
            assert!(
                r.upload_bytes_mean > 0,
                "{} round {}: zero mean upload bytes",
                log.method,
                r.round
            );
            assert!(
                r.upload_bytes_max >= r.upload_bytes_mean,
                "{} round {}: max < mean upload bytes",
                log.method,
                r.round
            );
            assert!(
                r.upload_bytes_max <= full_bytes,
                "{} round {}: upload exceeds dense model",
                log.method,
                r.round
            );
            assert!(
                r.download_bytes == full_bytes,
                "{} round {}: downlink must be the full global model",
                log.method,
                r.round
            );
        }
    }
}

#[test]
fn all_six_baselines_smoke_on_text() {
    // On the LSTM workload FedMP prunes only the dense head (recurrent and
    // embedding structure is off-limits), but it must still run cleanly.
    let bundle = build(Workload::PtbLike, Scale::Smoke, 73);
    let cfg = smoke_cfg(&bundle, 73);
    let p = bundle.dropout_rate;
    let model = bundle.model.as_ref();

    let logs = vec![
        Experiment::new(model, &bundle.data, FedAvg::new(), cfg).run(),
        Experiment::new(model, &bundle.data, FedDrop::new(p), cfg).run(),
        Experiment::new(model, &bundle.data, Afd::new(p), cfg).run(),
        Experiment::new(model, &bundle.data, FedMp::new(p), cfg).run(),
        Experiment::new(model, &bundle.data, Fjord::new(p), cfg).run(),
        Experiment::new(model, &bundle.data, HeteroFl::new(p), cfg).run(),
    ];
    for log in &logs {
        assert_eq!(log.records.len(), 2, "{}", log.method);
        assert!(
            log.records
                .iter()
                .all(|r| r.train_loss.is_finite() && r.test_loss.is_finite()),
            "{}: non-finite loss",
            log.method
        );
        assert!(
            log.mean_upload_bytes() > 0,
            "{}: zero upload accounting",
            log.method
        );
    }
}
