//! Million-client memory regression. A `[population]` round must stay
//! O(cohort) in memory: registering 10⁵ clients and running one
//! simulated round may not move the process peak RSS by more than a
//! committed budget (the eagerly materialised equivalent would need
//! ≈ 1.5 GB for the client shards alone). The lazy data path is pinned
//! to the eager one by differential + property tests — materialising
//! the whole population and training on it must reproduce the lazy run
//! bit for bit.
//!
//! The RSS assertion reads `VmHWM`, which is process-wide and
//! monotonic, so it lives in its own integration-test file: this binary
//! runs only small companion tests whose allocations are far below the
//! budget.

use fedbiad::fl::metrics;
use fedbiad::fl::round::{sample_clients_sparse, SamplerKind};
use fedbiad::fl::workload::{build_with, PopulationOverride, WorkloadOverrides};
use fedbiad::fl::AggSettings;
use fedbiad::prelude::*;
use proptest::prelude::*;

/// Peak-RSS delta budget for a 10⁵-client lazy round. The cohort is 64
/// clients of 60 samples × 64 features — well under a megabyte of live
/// shard data — so the budget is dominated by allocator slack and the
/// event trace, with an order of magnitude of headroom before it gets
/// anywhere near the ≈ 1.5 GB an eager population would cost.
const RSS_BUDGET_BYTES: u64 = 256 * 1024 * 1024;

fn population_cfg(
    bundle: &fedbiad::fl::workload::WorkloadBundle,
    seed: u64,
    rounds: usize,
    cohort: usize,
) -> ExperimentConfig {
    ExperimentConfig {
        rounds,
        client_fraction: 0.1,
        seed,
        train: bundle.train,
        eval_topk: bundle.eval_topk,
        eval_every: 1,
        eval_max_samples: 200,
        agg: AggSettings::sharded_tree(64, 16),
        cohort: Some(cohort),
        sampler: SamplerKind::Sparse,
        adversary: None,
        churn: None,
    }
}

fn lazy_bundle(clients: usize, samples: usize, seed: u64) -> fedbiad::fl::workload::WorkloadBundle {
    let overrides = WorkloadOverrides {
        population: Some(PopulationOverride {
            clients,
            samples_per_client: samples,
        }),
        ..Default::default()
    };
    build_with(Workload::MnistLike, Scale::Smoke, seed, &overrides)
}

#[test]
fn hundred_thousand_client_round_stays_within_the_rss_budget() {
    let peak_before = metrics::peak_rss_bytes();
    let bundle = lazy_bundle(100_000, 60, 42);
    assert_eq!(bundle.data.num_clients(), 100_000);

    let cfg = population_cfg(&bundle, 42, 1, 64);
    let sim_cfg = SimConfig::new(cfg, HeterogeneityProfile::homogeneous_5g());
    let report = Simulator::new(
        bundle.model.as_ref(),
        &bundle.data,
        FedAvg::new(),
        SyncBarrier,
        sim_cfg,
    )
    .run();
    assert_eq!(report.log.records.len(), 1, "the round must complete");

    let peak_after = metrics::peak_rss_bytes();
    // /proc may be unreadable in exotic sandboxes; the budget assertion
    // only makes sense when both samples are real.
    if peak_before > 0 && peak_after > 0 {
        let delta = peak_after.saturating_sub(peak_before);
        assert!(
            delta < RSS_BUDGET_BYTES,
            "10^5-client lazy round moved peak RSS by {:.1} MiB (budget {:.0} MiB) — \
             an O(registered-clients) allocation has crept back in",
            delta as f64 / (1024.0 * 1024.0),
            RSS_BUDGET_BYTES as f64 / (1024.0 * 1024.0),
        );
    }
}

fn assert_logs_bit_identical(a: &ExperimentLog, b: &ExperimentLog, what: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{what}: round count");
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(
            ra.train_loss.to_bits(),
            rb.train_loss.to_bits(),
            "{what}: train loss, round {}",
            ra.round
        );
        assert_eq!(
            ra.test_loss.to_bits(),
            rb.test_loss.to_bits(),
            "{what}: test loss, round {}",
            ra.round
        );
        assert_eq!(
            ra.test_acc.to_bits(),
            rb.test_acc.to_bits(),
            "{what}: test acc, round {}",
            ra.round
        );
        assert_eq!(
            ra.upload_bytes_mean, rb.upload_bytes_mean,
            "{what}: upload bytes, round {}",
            ra.round
        );
    }
}

/// Training on the lazy dataset must be bit-identical to training on a
/// fully materialised copy of the same population — the lazy path may
/// change *when* shards exist, never *what* they contain.
#[test]
fn lazy_training_is_bit_identical_to_materialised() {
    let bundle = lazy_bundle(512, 24, 7);
    let eager = bundle.data.materialize();
    assert_eq!(eager.num_clients(), 512);
    assert!(eager.lazy.is_none());

    let cfg = population_cfg(&bundle, 7, 2, 16);
    let run =
        |data: &FedDataset| Experiment::new(bundle.model.as_ref(), data, FedAvg::new(), cfg).run();
    assert_logs_bit_identical(&run(&bundle.data), &run(&eager), "fedavg lazy vs eager");

    let masked = |data: &FedDataset| {
        let algo = FedBiad::new(FedBiadConfig::paper(bundle.dropout_rate, 1));
        Experiment::new(bundle.model.as_ref(), data, algo, cfg).run()
    };
    assert_logs_bit_identical(
        &masked(&bundle.data),
        &masked(&eager),
        "fedbiad lazy vs eager",
    );
}

proptest! {
    /// Every lazily derived shard matches the materialised table bit for
    /// bit, for arbitrary (population, shard size, seed, client).
    #[test]
    fn lazy_shards_match_materialised_for_any_population(
        clients in 1usize..400,
        samples in 1usize..48,
        seed in 0u64..1_000,
        probe in 0usize..400,
    ) {
        let bundle = lazy_bundle(clients, samples, seed);
        let eager = bundle.data.materialize();
        let id = probe % clients;
        let lazy = bundle.data.client(id);
        let (ClientData::Image(l), ClientData::Image(e)) = (lazy.as_ref(), &eager.clients[id])
        else {
            panic!("population override builds image shards");
        };
        prop_assert_eq!(l.dim, e.dim);
        prop_assert_eq!(&l.y, &e.y);
        prop_assert_eq!(l.x.len(), e.x.len());
        for (a, b) in l.x.iter().zip(&e.x) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Floyd's sparse sampler draws exactly `cohort` unique, in-range,
    /// sorted ids and is a pure function of `(seed, round)` — for
    /// arbitrary (num_clients, cohort, seed, round).
    #[test]
    fn sparse_sampler_is_exact_unique_and_deterministic(
        num_clients in 1usize..100_000,
        cohort_raw in 1usize..256,
        seed in 0u64..1_000,
        round in 0usize..50,
    ) {
        let cohort = cohort_raw.min(num_clients);
        let draw = || sample_clients_sparse(seed, round, num_clients, cohort);
        let a = draw();
        prop_assert_eq!(a.len(), cohort);
        prop_assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        prop_assert!(a.iter().all(|&c| c < num_clients));
        prop_assert_eq!(&a, &draw());
    }
}
