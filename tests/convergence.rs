//! Convergence-shape integration tests: slower than unit tests, these
//! verify the *qualitative* claims the benchmarks rely on, at smoke scale.

use fedbiad::core::theory::{generalization_bound, m_r, TheoryParams};
use fedbiad::prelude::*;

#[test]
fn fedavg_and_fedbiad_both_learn_mnist_like() {
    let bundle = build(Workload::MnistLike, Scale::Smoke, 31);
    let rounds = 24;
    let cfg = ExperimentConfig {
        rounds,
        client_fraction: 0.4,
        seed: 31,
        train: bundle.train,
        eval_topk: 1,
        eval_every: 1,
        eval_max_samples: 0,
        agg: Default::default(),
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    };
    let avg = Experiment::new(bundle.model.as_ref(), &bundle.data, FedAvg::new(), cfg).run();
    let biad = Experiment::new(
        bundle.model.as_ref(),
        &bundle.data,
        FedBiad::new(FedBiadConfig::paper(bundle.dropout_rate, rounds - 4)),
        cfg,
    )
    .run();
    // Chance on the 4-class smoke task is 25 %.
    assert!(
        avg.final_accuracy_pct() > 45.0,
        "fedavg {}",
        avg.final_accuracy_pct()
    );
    assert!(
        biad.final_accuracy_pct() > 40.0,
        "fedbiad {}",
        biad.final_accuracy_pct()
    );
    // FedBIAD stays within a reasonable band of FedAvg while uploading less.
    assert!(biad.final_accuracy_pct() > avg.final_accuracy_pct() - 20.0);
    assert!(biad.mean_upload_bytes() < avg.mean_upload_bytes());
}

#[test]
fn lstm_learns_above_unigram_baseline() {
    let bundle = build(Workload::PtbLike, Scale::Smoke, 37);
    let rounds = 15;
    let cfg = ExperimentConfig {
        rounds,
        client_fraction: 0.5,
        seed: 37,
        train: bundle.train,
        eval_topk: 3,
        eval_every: 1,
        eval_max_samples: 0,
        agg: Default::default(),
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    };
    let avg = Experiment::new(bundle.model.as_ref(), &bundle.data, FedAvg::new(), cfg).run();
    let first = avg.records[0].test_loss;
    let last = avg.records.last().unwrap().test_loss;
    assert!(last < first, "test loss should fall: {first} -> {last}");
    assert!(avg.final_accuracy_pct() > 10.0);
}

#[test]
fn train_loss_trends_down_for_fedbiad() {
    let bundle = build(Workload::MnistLike, Scale::Smoke, 41);
    let rounds = 16;
    let cfg = ExperimentConfig {
        rounds,
        client_fraction: 0.4,
        seed: 41,
        train: bundle.train,
        eval_topk: 1,
        eval_every: 4,
        eval_max_samples: 0,
        agg: Default::default(),
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    };
    let log = Experiment::new(
        bundle.model.as_ref(),
        &bundle.data,
        FedBiad::new(FedBiadConfig::paper(0.3, rounds - 4)),
        cfg,
    )
    .run();
    let head: f32 = log.records[..4].iter().map(|r| r.train_loss).sum::<f32>() / 4.0;
    let tail: f32 = log.records[rounds - 4..]
        .iter()
        .map(|r| r.train_loss)
        .sum::<f32>()
        / 4.0;
    assert!(tail < head, "train loss should fall: {head} -> {tail}");
}

#[test]
fn theorem1_bound_decreases_and_dominates_zero() {
    let bundle = build(Workload::MnistLike, Scale::Smoke, 43);
    let arch = bundle.model.arch();
    let p = TheoryParams::from_arch(&arch, bundle.dropout_rate as f64);
    let min_dk = bundle.data.min_client_samples();
    let mut prev = f64::INFINITY;
    for r in 1..=40 {
        let b = generalization_bound(&p, m_r(r, bundle.train.local_iters, min_dk), 0.0);
        assert!(b > 0.0 && b < prev, "round {r}: {b} !< {prev}");
        prev = b;
    }
}

#[test]
fn tta_improves_with_smaller_uploads_all_else_equal() {
    use fedbiad::fl::timing::time_to_accuracy;
    let bundle = build(Workload::MnistLike, Scale::Smoke, 47);
    let rounds = 18;
    let cfg = ExperimentConfig {
        rounds,
        client_fraction: 0.4,
        seed: 47,
        train: bundle.train,
        eval_topk: 1,
        eval_every: 1,
        eval_max_samples: 0,
        agg: Default::default(),
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    };
    let net = NetworkModel::t_mobile_5g();
    let avg = Experiment::new(bundle.model.as_ref(), &bundle.data, FedAvg::new(), cfg).run();
    let biad = Experiment::new(
        bundle.model.as_ref(),
        &bundle.data,
        FedBiad::new(FedBiadConfig::paper(bundle.dropout_rate, rounds - 4)),
        cfg,
    )
    .run();
    // Use a soft target both reach; FedBIAD's smaller uploads should not
    // make it slower per unit accuracy unless it needs many more rounds.
    let target = 0.45;
    let t_avg = time_to_accuracy(&avg.records, target, &net);
    let t_biad = time_to_accuracy(&biad.records, target, &net);
    assert!(
        t_avg.is_some() && t_biad.is_some(),
        "both should reach {target}"
    );
    // Not asserting strict ordering at smoke scale — only that both are
    // finite and FedBIAD is not catastrophically slower.
    assert!(t_biad.unwrap() < 3.0 * t_avg.unwrap());
}
