//! Property-based tests on the core invariants (proptest).

use fedbiad::compress::dgc::Dgc;
use fedbiad::compress::fedpaq::FedPaq;
use fedbiad::compress::signsgd::SignSgd;
use fedbiad::compress::stc::Stc;
use fedbiad::compress::{ClientState, Compressor};
use fedbiad::core::pattern::{keep_count, DropPattern};
use fedbiad::fl::aggregate::{aggregate_weights, AggSettings, RobustKind, ZeroMode};
use fedbiad::fl::upload::Upload;
use fedbiad::nn::mask::BitVec;
use fedbiad::nn::mlp::MlpModel;
use fedbiad::nn::params::{EntryMeta, LayerKind, ParamSet};
use fedbiad::nn::{Model, ModelMask};
use fedbiad::tensor::rng::{stream, StreamTag};
use fedbiad::tensor::{stats, Matrix};
use proptest::prelude::*;
use rand::Rng;

fn small_params(rows: usize, cols: usize, vals: &[f32]) -> ParamSet {
    let mut p = ParamSet::new();
    p.push_entry(
        Matrix::from_vec(rows, cols, vals.to_vec()),
        None,
        EntryMeta::new("w", LayerKind::DenseHidden, false, true),
    );
    p
}

proptest! {
    /// Sampling from Z_S^N always yields exactly S kept rows, for any
    /// (J, p, seed).
    #[test]
    fn pattern_cardinality_is_exact(j in 1usize..300, p in 0.0f32..0.95, seed in 0u64..500) {
        let keep = keep_count(j, p);
        let mut rng = stream(seed, StreamTag::Pattern, 0, 0);
        let pat = DropPattern::sample_global(j, keep, &mut rng);
        prop_assert_eq!(pat.kept(), keep);
        prop_assert!(keep >= 1 && keep <= j);
    }

    /// Masked-weights upload bytes never exceed the dense model and always
    /// cover the kept parameters.
    #[test]
    fn upload_bytes_bounded(rows in 1usize..20, cols in 1usize..20, p in 0.0f32..0.9, seed in 0u64..100) {
        let vals = vec![1.0f32; rows * cols];
        let params = small_params(rows, cols, &vals);
        let j = params.num_row_units();
        let keep = keep_count(j, p);
        let mut rng = stream(seed, StreamTag::Pattern, 0, 0);
        let pat = DropPattern::sample_global(j, keep, &mut rng);
        let mask = pat.to_mask(&params);
        let bytes = mask.wire_bytes(&params);
        prop_assert!(bytes >= (keep * cols * 4) as u64);
        prop_assert!(bytes <= params.total_bytes() + (rows as u64).div_ceil(8));
    }

    /// Weighted aggregation of identical uploads is the identity
    /// (idempotence), for every zero-handling mode.
    #[test]
    fn aggregation_idempotent_on_identical_full_uploads(v in -5.0f32..5.0, w in 0.5f32..10.0) {
        let params = small_params(3, 2, &[v; 6]);
        let up = Upload::full_weights(params.clone());
        for mode in [ZeroMode::ZerosPull, ZeroMode::HoldersOnly, ZeroMode::StaleFill] {
            let mut g = small_params(3, 2, &[0.0; 6]);
            aggregate_weights(&mut g, &[(w, &up), (w, &up)], mode, Default::default()).unwrap();
            for (a, b) in g.flatten().iter().zip(params.flatten()) {
                prop_assert!((a - b).abs() < 1e-5, "{mode:?}");
            }
        }
    }

    /// Aggregated values always lie in the convex hull of the inputs
    /// (weights version of the averaging contract), holders mode.
    #[test]
    fn aggregation_stays_in_convex_hull(a in -3.0f32..3.0, b in -3.0f32..3.0, wa in 0.1f32..5.0, wb in 0.1f32..5.0) {
        let ua = Upload::full_weights(small_params(2, 2, &[a; 4]));
        let ub = Upload::full_weights(small_params(2, 2, &[b; 4]));
        let mut g = small_params(2, 2, &[0.0; 4]);
        aggregate_weights(&mut g, &[(wa, &ua), (wb, &ub)], ZeroMode::HoldersOnly, Default::default()).unwrap();
        let lo = a.min(b) - 1e-5;
        let hi = a.max(b) + 1e-5;
        for v in g.flatten() {
            prop_assert!(v >= lo && v <= hi);
        }
    }

    /// Error-feedback compressors conserve mass: decoded + residual =
    /// corrected input (per coordinate), every round.
    #[test]
    fn stc_conserves_mass(vals in proptest::collection::vec(-10.0f32..10.0, 4..64)) {
        let comp = Stc { keep_fraction: 0.25 };
        let mut st = ClientState::default();
        let mut rng = stream(1, StreamTag::Compress, 0, 0);
        // corrected = vals + residual(=0); decoded + residual' must equal it.
        let c = comp.compress(&mut st, &vals, 0, &mut rng);
        for (i, &v) in vals.iter().enumerate() {
            prop_assert!((c.decoded[i] + st.residual[i] - v).abs() < 1e-4);
        }
    }

    /// Quantisers are sign-preserving and bounded by the input range.
    #[test]
    fn fedpaq_bounded_and_sign_preserving(vals in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
        let comp = FedPaq::paper();
        let mut st = ClientState::default();
        let mut rng = stream(2, StreamTag::Compress, 0, 0);
        let c = comp.compress(&mut st, &vals, 0, &mut rng);
        let max = vals.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for (d, &v) in c.decoded.iter().zip(&vals) {
            prop_assert!(d.abs() <= max + 1e-4);
            // Quantisation may flip only values within half a step of zero.
            if v.abs() > max / 127.0 {
                prop_assert!(d.signum() == v.signum() || *d == 0.0);
            }
        }
    }

    /// SignSGD wire size is exactly ⌈n/8⌉ + 4 bytes.
    #[test]
    fn signsgd_wire_size_exact(n in 1usize..1000) {
        let comp = SignSgd::default();
        let mut st = ClientState::default();
        let mut rng = stream(3, StreamTag::Compress, 0, 0);
        let c = comp.compress(&mut st, &vec![1.0; n], 0, &mut rng);
        prop_assert_eq!(c.wire_bytes, (n as u64).div_ceil(8) + 4);
    }

    /// DGC's warm-up schedule is monotone non-increasing and ends at the
    /// configured fraction.
    #[test]
    fn dgc_warmup_monotone(keep in 0.0001f32..0.1, warmup in 0usize..8) {
        let d = Dgc { keep_fraction: keep, momentum: 0.9, warmup_rounds: warmup };
        let mut prev = f32::INFINITY;
        for r in 0..warmup + 3 {
            let k = d.keep_at(r);
            prop_assert!(k <= prev + 1e-9);
            prev = k;
        }
        prop_assert!((d.keep_at(warmup + 2) - keep).abs() < 1e-9);
    }

    /// Quantile is monotone in q and bounded by min/max.
    #[test]
    fn quantile_monotone(vals in proptest::collection::vec(-50.0f32..50.0, 1..64), q1 in 0.0f32..1.0, q2 in 0.0f32..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = stats::quantile(&vals, lo);
        let b = stats::quantile(&vals, hi);
        prop_assert!(a <= b + 1e-6);
        let mn = vals.iter().copied().fold(f32::INFINITY, f32::min);
        let mx = vals.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(a >= mn - 1e-6 && b <= mx + 1e-6);
    }

    /// Coverage mask application is idempotent.
    #[test]
    fn mask_apply_idempotent(seed in 0u64..200, p in 0.1f32..0.9) {
        let model = MlpModel::new(6, 8, 3);
        let params = model.init_params(&mut stream(seed, StreamTag::Init, 0, 0));
        let j = params.num_row_units();
        let mut rng = stream(seed, StreamTag::Pattern, 1, 0);
        let pat = DropPattern::sample_global(j, keep_count(j, p), &mut rng);
        let mask = pat.to_mask(&params);
        let mut once = params.clone();
        mask.apply(&mut once);
        let mut twice = once.clone();
        mask.apply(&mut twice);
        prop_assert_eq!(once.flatten(), twice.flatten());
    }

    /// Robust estimators are permutation invariant: shuffling the upload
    /// list never changes the aggregate beyond f32 re-association noise.
    #[test]
    fn robust_aggregation_is_permutation_invariant(
        vals in proptest::collection::vec(-5.0f32..5.0, 3..9),
        seed in 0u64..64,
    ) {
        // Strictly increasing by construction: a value tie between
        // clients of different weights would legitimately resolve by
        // upload order, which is exactly what this test must not depend on.
        let mut acc = -5.0f32;
        let vals: Vec<f32> = vals
            .iter()
            .map(|v| {
                acc += 1e-3 + v.abs() * 0.2;
                acc
            })
            .collect();

        let uploads: Vec<(f32, Upload)> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| ((i + 1) as f32, Upload::full_weights(small_params(2, 2, &[v; 4]))))
            .collect();
        let mut perm: Vec<usize> = (0..uploads.len()).collect();
        let mut rng = stream(seed, StreamTag::Scenario, 4, 0);
        for i in (1..perm.len()).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        for robust in [
            RobustKind::TrimmedMean { trim_frac: 0.25 },
            RobustKind::CoordinateMedian,
        ] {
            let settings = AggSettings::default().with_robust(robust);
            let run = |order: &[usize]| {
                let ups: Vec<(f32, &Upload)> =
                    order.iter().map(|&i| (uploads[i].0, &uploads[i].1)).collect();
                let mut g = small_params(2, 2, &[0.0; 4]);
                aggregate_weights(&mut g, &ups, ZeroMode::HoldersOnly, settings).unwrap();
                g.flatten()
            };
            let forward: Vec<usize> = (0..uploads.len()).collect();
            for (a, b) in run(&forward).iter().zip(run(&perm)) {
                prop_assert!((a - b).abs() < 1e-4, "{robust:?}: {a} vs {b}");
            }
        }
    }

    /// `trim_frac = 0` routes to the weighted mean verbatim — **bitwise**,
    /// for arbitrary values and weights.
    #[test]
    fn trim_zero_is_the_weighted_mean_bitwise(
        vals in proptest::collection::vec(-5.0f32..5.0, 2..8),
    ) {
        let uploads: Vec<(f32, Upload)> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| ((i + 1) as f32 * 0.7, Upload::full_weights(small_params(2, 2, &[v; 4]))))
            .collect();
        let ups: Vec<(f32, &Upload)> = uploads.iter().map(|(w, u)| (*w, u)).collect();
        for mode in [ZeroMode::ZerosPull, ZeroMode::HoldersOnly, ZeroMode::StaleFill] {
            let mut mean = small_params(2, 2, &[0.0; 4]);
            aggregate_weights(&mut mean, &ups, mode, AggSettings::default()).unwrap();
            let mut trim0 = small_params(2, 2, &[0.0; 4]);
            aggregate_weights(
                &mut trim0,
                &ups,
                mode,
                AggSettings::default().with_robust(RobustKind::TrimmedMean { trim_frac: 0.0 }),
            )
            .unwrap();
            for (a, b) in mean.flatten().iter().zip(trim0.flatten()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{:?}", mode);
            }
        }
    }

    /// Breakdown-point sanity: with `m` outliers at a huge value among
    /// `n` honest equal-weight clients, a trim depth `k ≥ m` (and the
    /// median, while `m` is a minority) keeps the aggregate inside the
    /// honest convex hull — while the mean is dragged far outside it.
    #[test]
    fn robust_estimators_absorb_outliers_the_mean_cannot(
        honest in proptest::collection::vec(-2.0f32..2.0, 5..9),
        m in 1usize..3,
        big in 1e6f32..1e8,
    ) {
        let n = honest.len();
        let uploads: Vec<(f32, Upload)> = honest
            .iter()
            .copied()
            .chain(std::iter::repeat_n(big, m))
            .map(|v| (1.0f32, Upload::full_weights(small_params(2, 2, &[v; 4]))))
            .collect();
        let ups: Vec<(f32, &Upload)> = uploads.iter().map(|(w, u)| (*w, u)).collect();
        // ⌊0.34·(n+m)⌋ ≥ 2 ≥ m for every generated size, and 2k < n+m.
        let k = (0.34 * (n + m) as f32).floor() as usize;
        prop_assert!(k >= m && 2 * k < n + m);
        let lo = honest.iter().copied().fold(f32::INFINITY, f32::min) - 1e-4;
        let hi = honest.iter().copied().fold(f32::NEG_INFINITY, f32::max) + 1e-4;
        let run = |robust: RobustKind| {
            let mut g = small_params(2, 2, &[0.0; 4]);
            aggregate_weights(
                &mut g,
                &ups,
                ZeroMode::HoldersOnly,
                AggSettings::default().with_robust(robust),
            )
            .unwrap();
            g.flatten()[0]
        };
        for robust in [
            RobustKind::TrimmedMean { trim_frac: 0.34 },
            RobustKind::CoordinateMedian,
        ] {
            let v = run(robust);
            prop_assert!(v >= lo && v <= hi, "{robust:?} left the honest hull: {v}");
        }
        let mean = run(RobustKind::Mean);
        prop_assert!(mean > hi + 1.0, "the mean should be poisoned: {mean}");
    }

    /// β → mask → kept-bit round trip: a row unit is kept in the mask iff
    /// β says so.
    #[test]
    fn beta_mask_round_trip(seed in 0u64..200) {
        let model = MlpModel::new(5, 7, 4);
        let params = model.init_params(&mut stream(seed, StreamTag::Init, 0, 0));
        let j = params.num_row_units();
        let mut rng = stream(seed, StreamTag::Pattern, 2, 0);
        let pat = DropPattern::sample_global(j, keep_count(j, 0.4), &mut rng);
        let mask = pat.to_mask(&params);
        for ju in 0..j {
            let (e, u) = params.row_unit(ju);
            let cols = params.mat(e).cols();
            prop_assert_eq!(mask.per_entry[e].covers(u, 0, cols), pat.is_kept(ju));
        }
        let _ = BitVec::new(1, true); // keep the import exercised
        let _ = ModelMask::full(&params);
    }
}
