//! Regression guard for the parallel-aggregation ordering contract: the
//! exact same experiment must produce **bit-identical** logs whether the
//! worker pool has one thread (`RAYON_NUM_THREADS=1`) or the machine
//! default. The vendored rayon shim guarantees this by claiming work items
//! from an atomic counter into per-index result slots and folding
//! reductions in item-index order — this test keeps anyone from regressing
//! that into a scheduling-order-dependent reduce.
//!
//! Timing fields (`local_seconds_*`, `agg_seconds`) are genuinely
//! wall-clock and excluded from the comparison.

use fedbiad::prelude::*;

fn run_once(seed: u64) -> ExperimentLog {
    let bundle = build(Workload::MnistLike, Scale::Smoke, seed);
    let cfg = ExperimentConfig {
        rounds: 4,
        client_fraction: 0.5,
        seed,
        train: bundle.train,
        eval_topk: 1,
        eval_every: 1,
        eval_max_samples: 0,
    };
    let algo = FedBiad::new(FedBiadConfig::paper(bundle.dropout_rate, 2));
    Experiment::new(bundle.model.as_ref(), &bundle.data, algo, cfg).run()
}

fn assert_logs_bit_identical(a: &ExperimentLog, b: &ExperimentLog, what: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{what}: round count");
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(
            ra.train_loss.to_bits(),
            rb.train_loss.to_bits(),
            "{what}: train loss, round {}",
            ra.round
        );
        assert_eq!(
            ra.test_loss.to_bits(),
            rb.test_loss.to_bits(),
            "{what}: test loss, round {}",
            ra.round
        );
        assert_eq!(
            ra.test_acc.to_bits(),
            rb.test_acc.to_bits(),
            "{what}: test acc, round {}",
            ra.round
        );
        assert_eq!(
            ra.upload_bytes_mean, rb.upload_bytes_mean,
            "{what}: upload bytes, round {}",
            ra.round
        );
        assert_eq!(
            ra.upload_bytes_max, rb.upload_bytes_max,
            "{what}: max upload bytes, round {}",
            ra.round
        );
        assert_eq!(
            ra.download_bytes, rb.download_bytes,
            "{what}: download bytes, round {}",
            ra.round
        );
    }
}

#[test]
fn single_thread_and_default_threading_agree_bitwise() {
    // One process, one test: flip the env var between runs. The rayon shim
    // re-reads RAYON_NUM_THREADS on every parallel call, so the setting
    // takes effect immediately.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let single = run_once(2024);
    std::env::remove_var("RAYON_NUM_THREADS");
    let parallel = run_once(2024);
    assert_logs_bit_identical(&single, &parallel, "1 thread vs default");

    // An oversubscribed pool must agree too (stress the claim ordering).
    std::env::set_var("RAYON_NUM_THREADS", "16");
    let oversub = run_once(2024);
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_logs_bit_identical(&single, &oversub, "1 thread vs 16 threads");
}
