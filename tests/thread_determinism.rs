//! Regression guard for the parallel-aggregation ordering contract: the
//! exact same experiment must produce **bit-identical** logs whether the
//! worker pool has one thread (`RAYON_NUM_THREADS=1`) or the machine
//! default. The vendored rayon shim guarantees this by claiming work items
//! from an atomic counter into per-index result slots and folding
//! reductions in item-index order — this test keeps anyone from regressing
//! that into a scheduling-order-dependent reduce.
//!
//! Timing fields (`local_seconds_*`, `agg_seconds`) are genuinely
//! wall-clock and excluded from the comparison.

use fedbiad::prelude::*;
use std::sync::Mutex;

/// Tests in this binary mutate the process-wide `RAYON_NUM_THREADS`
/// variable; they must not interleave or a "1 thread" run could silently
/// execute at the default width.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn run_once(seed: u64) -> ExperimentLog {
    let bundle = build(Workload::MnistLike, Scale::Smoke, seed);
    let cfg = ExperimentConfig {
        rounds: 4,
        client_fraction: 0.5,
        seed,
        train: bundle.train,
        eval_topk: 1,
        eval_every: 1,
        eval_max_samples: 0,
        agg: Default::default(),
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    };
    let algo = FedBiad::new(FedBiadConfig::paper(bundle.dropout_rate, 2));
    Experiment::new(bundle.model.as_ref(), &bundle.data, algo, cfg).run()
}

fn assert_logs_bit_identical(a: &ExperimentLog, b: &ExperimentLog, what: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{what}: round count");
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(
            ra.train_loss.to_bits(),
            rb.train_loss.to_bits(),
            "{what}: train loss, round {}",
            ra.round
        );
        assert_eq!(
            ra.test_loss.to_bits(),
            rb.test_loss.to_bits(),
            "{what}: test loss, round {}",
            ra.round
        );
        assert_eq!(
            ra.test_acc.to_bits(),
            rb.test_acc.to_bits(),
            "{what}: test acc, round {}",
            ra.round
        );
        assert_eq!(
            ra.upload_bytes_mean, rb.upload_bytes_mean,
            "{what}: upload bytes, round {}",
            ra.round
        );
        assert_eq!(
            ra.upload_bytes_max, rb.upload_bytes_max,
            "{what}: max upload bytes, round {}",
            ra.round
        );
        assert_eq!(
            ra.download_bytes, rb.download_bytes,
            "{what}: download bytes, round {}",
            ra.round
        );
    }
}

#[test]
fn single_thread_and_default_threading_agree_bitwise() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Flip the env var between runs. The rayon shim re-reads
    // RAYON_NUM_THREADS on every parallel call, so the setting takes
    // effect immediately.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let single = run_once(2024);
    std::env::remove_var("RAYON_NUM_THREADS");
    let parallel = run_once(2024);
    assert_logs_bit_identical(&single, &parallel, "1 thread vs default");

    // An oversubscribed pool must agree too (stress the claim ordering).
    std::env::set_var("RAYON_NUM_THREADS", "16");
    let oversub = run_once(2024);
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_logs_bit_identical(&single, &oversub, "1 thread vs 16 threads");
}

/// The streaming sharded aggregation engine parallelises over shards;
/// the full experiment must stay bit-identical across thread counts —
/// and to the dense-engine run (the cross-engine contract lives in
/// `tests/aggregation_equivalence.rs`; this pins the thread axis on a
/// whole training run with tiny 1 KiB shards, the raggedest schedule).
fn run_once_streaming(seed: u64) -> ExperimentLog {
    let bundle = build(Workload::MnistLike, Scale::Smoke, seed);
    let cfg = ExperimentConfig {
        rounds: 4,
        client_fraction: 0.5,
        seed,
        train: bundle.train,
        eval_topk: 1,
        eval_every: 1,
        eval_max_samples: 0,
        agg: fedbiad::fl::AggSettings::sharded(1),
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    };
    let algo = FedBiad::new(FedBiadConfig::paper(bundle.dropout_rate, 2));
    Experiment::new(bundle.model.as_ref(), &bundle.data, algo, cfg).run()
}

#[test]
fn streaming_aggregation_is_bitwise_thread_invariant() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let single = run_once_streaming(2024);
    // Streaming and dense runs of the same experiment agree bitwise.
    let dense = run_once(2024);
    assert_logs_bit_identical(&single, &dense, "streaming vs dense engine");
    for threads in ["2", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let multi = run_once_streaming(2024);
        assert_logs_bit_identical(&single, &multi, "streaming 1 thread vs more");
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

/// Telemetry inertness on the thread axis: the same experiment run under
/// an **active** capture must stay bit-identical to the quiescent run at
/// every pool width. Workspace builds compile the collector in (the
/// bench harness enables it); `-p`-scoped builds get the no-op version
/// and skip this leg.
#[test]
fn active_telemetry_capture_is_bitwise_thread_invariant() {
    if !fedbiad::telemetry::compiled() {
        eprintln!("telemetry not compiled in; capture leg skipped");
        return;
    }
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let quiescent = run_once(2024);
    for threads in ["1", "2", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        fedbiad::telemetry::begin_capture();
        let captured = run_once(2024);
        let capture = fedbiad::telemetry::end_capture();
        assert!(!capture.is_empty(), "capture recorded nothing");
        assert_logs_bit_identical(
            &quiescent,
            &captured,
            &format!("quiescent vs captured at {threads} thread(s)"),
        );
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

/// One full discrete-event simulation: FedBuff (the policy with the most
/// scheduling freedom) on a straggler cohort, FedBIAD as the algorithm
/// (masked uploads of varying wire size feed back into arrival times).
fn run_sim_once(seed: u64) -> fedbiad::sim::SimReport {
    use fedbiad::sim::{FedBuff, HeterogeneityProfile, SimConfig, Simulator};
    let bundle = build(Workload::MnistLike, Scale::Smoke, seed);
    let cfg = ExperimentConfig {
        rounds: 6,
        client_fraction: 0.5,
        seed,
        train: bundle.train,
        eval_topk: 1,
        eval_every: 1,
        eval_max_samples: 0,
        agg: Default::default(),
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    };
    let stragglers = HeterogeneityProfile::Stragglers {
        fraction: 0.3,
        slowdown: 15.0,
        jitter: 0.2,
    };
    let algo = FedBiad::new(FedBiadConfig::paper(bundle.dropout_rate, 4));
    Simulator::new(
        bundle.model.as_ref(),
        &bundle.data,
        algo,
        FedBuff::new(2, 4),
        SimConfig::new(cfg, stragglers),
    )
    .run()
}

fn assert_traces_bit_identical(
    a: &fedbiad::sim::SimReport,
    b: &fedbiad::sim::SimReport,
    what: &str,
) {
    assert_eq!(a.trace.len(), b.trace.len(), "{what}: trace length");
    for (i, (ea, eb)) in a.trace.iter().zip(&b.trace).enumerate() {
        assert_eq!(
            ea.time.to_bits(),
            eb.time.to_bits(),
            "{what}: event {i} time {} vs {}",
            ea.time,
            eb.time
        );
        assert_eq!(ea.kind, eb.kind, "{what}: event {i} kind");
        assert_eq!(ea.client, eb.client, "{what}: event {i} client");
        assert_eq!(ea.rounds_done, eb.rounds_done, "{what}: event {i} round");
    }
    assert_eq!(
        a.total_virtual_seconds.to_bits(),
        b.total_virtual_seconds.to_bits(),
        "{what}: total virtual time"
    );
    assert_logs_bit_identical(&a.log, &b.log, what);
}

/// The batched GEMM kernels parallelise over row panels; their outputs
/// must not depend on how the panels are scheduled. Shapes straddle the
/// parallel threshold, the 4-row sample blocks and the 4-wide unroll
/// (odd row counts and a non-multiple-of-4 inner dimension).
#[test]
fn batched_kernels_are_bitwise_thread_invariant() {
    use fedbiad::tensor::ops;
    use fedbiad::tensor::rng::{stream, StreamTag};
    use fedbiad::tensor::Matrix;
    use rand::Rng;

    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (m, n, k) = (41usize, 97usize, 131usize);
    let mut rng = stream(7, StreamTag::Init, 0, 0);
    let mut fill = |len: usize| -> Vec<f32> {
        (0..len)
            .map(|_| {
                if rng.gen_range(0..6) == 0 {
                    0.0
                } else {
                    rng.gen_range(-1.5f32..1.5)
                }
            })
            .collect()
    };
    let a = fill(m * k);
    let wt = Matrix::from_vec(n, k, fill(n * k)); // n×k: gemm_nt operand
    let wn = Matrix::from_vec(k, n, fill(k * n)); // k×n: gemm_nn operand
    let coeffs = fill(k * m);
    let order: Vec<usize> = (0..k).rev().collect();

    let run_all = || {
        let mut nt = vec![0.0f32; m * n];
        ops::gemm_nt(&a, &wt, m, &mut nt);
        let mut nn = vec![0.0f32; m * n];
        ops::gemm_nn(&a, &wn, m, &mut nn);
        let mut tn = Matrix::zeros(m, n);
        ops::gemm_tn_acc(&coeffs, wn.as_slice(), k, &mut tn);
        let mut ord = Matrix::zeros(m, n);
        ops::gemm_tn_acc_ord(&coeffs, wn.as_slice(), &order, 0, &mut ord);
        (nt, nn, tn, ord)
    };

    std::env::set_var("RAYON_NUM_THREADS", "1");
    let base = run_all();
    for threads in ["2", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let got = run_all();
        let pairs = [(&base.0, &got.0, "gemm_nt"), (&base.1, &got.1, "gemm_nn")];
        for (b, g, what) in pairs {
            for (i, (x, y)) in b.iter().zip(g.iter()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{what}[{i}] at {threads} threads: {x} vs {y}"
                );
            }
        }
        assert_eq!(
            base.2
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            got.2
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "gemm_tn_acc at {threads} threads"
        );
        assert_eq!(
            base.3
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            got.3
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "gemm_tn_acc_ord at {threads} threads"
        );
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

#[test]
fn sim_event_trace_is_bitwise_thread_invariant() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Property over several seeds: the simulator's event trace — times,
    // kinds, clients, committed rounds — is a pure function of (seed,
    // config), never of the rayon pool size.
    for seed in [2024u64, 31, 77] {
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let single = run_sim_once(seed);
        std::env::remove_var("RAYON_NUM_THREADS");
        let parallel = run_sim_once(seed);
        assert_traces_bit_identical(&single, &parallel, &format!("seed {seed}: 1 vs default"));

        std::env::set_var("RAYON_NUM_THREADS", "16");
        let oversub = run_sim_once(seed);
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_traces_bit_identical(&single, &oversub, &format!("seed {seed}: 1 vs 16"));

        // Same seed, same config ⇒ same trace; the trace is non-trivial.
        assert!(single.trace.len() > 20, "trace unexpectedly small");
    }
}
