//! Robust aggregation under attack: the accuracy-under-attack acceptance
//! run (sign-flipping byzantine clients degrade the weighted mean while
//! trimmed mean / coordinate median keep converging), the value-finiteness
//! screen on hostile wire frames, churn-emptied no-op rounds in both the
//! lock-step runner and the simulator, and the sync-barrier equivalence of
//! the two drivers under an active adversary + churn model.

use fedbiad::compress::codec;
use fedbiad::fl::adversary::{AdversarySpec, AttackMode, ChurnSpec, GarbageKind};
use fedbiad::fl::aggregate::{
    aggregate_weights, screen_upload_values, upload_has_non_finite, AggError, AggSettings,
    RobustKind, ZeroMode,
};
use fedbiad::fl::upload::{Upload, UploadKind};
use fedbiad::nn::mlp::MlpModel;
use fedbiad::nn::{Model, ModelMask, ParamSet};
use fedbiad::prelude::*;
use fedbiad::sim::TraceKind;
use fedbiad::tensor::rng::{stream, StreamTag};
use rand::Rng;

fn base_cfg(bundle: &fedbiad::fl::workload::WorkloadBundle, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        rounds: 8,
        client_fraction: 0.5,
        seed,
        train: bundle.train,
        eval_topk: bundle.eval_topk,
        eval_every: 1,
        eval_max_samples: 0,
        agg: Default::default(),
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    }
}

// ---- acceptance: 20% sign-flip, robust converges, mean degrades --------

#[test]
fn sign_flip_attack_robust_converges_mean_degrades() {
    let bundle = build(Workload::MnistLike, Scale::Smoke, 33);
    let attack = AdversarySpec {
        fraction: 0.2,
        mode: AttackMode::SignFlip,
    };
    let run = |robust: RobustKind, adversary: Option<AdversarySpec>| {
        let mut cfg = base_cfg(&bundle, 33);
        cfg.agg = AggSettings::default().with_robust(robust);
        cfg.adversary = adversary;
        Experiment::new(bundle.model.as_ref(), &bundle.data, FedAvg::new(), cfg)
            .run()
            .final_accuracy_pct()
    };

    let honest = run(RobustKind::Mean, None);
    let mean_attacked = run(RobustKind::Mean, Some(attack));
    let trimmed = run(RobustKind::TrimmedMean { trim_frac: 0.25 }, Some(attack));
    let median = run(RobustKind::CoordinateMedian, Some(attack));

    // The mean is poisoned: flipped uploads drag it far below the honest
    // baseline. The order statistics trim/out-vote the attackers and stay
    // within a few points of honest training.
    assert!(
        mean_attacked < honest - 10.0,
        "sign flip should degrade the mean: attacked {mean_attacked:.1}% vs honest {honest:.1}%"
    );
    for (name, acc) in [("trimmed mean", trimmed), ("median", median)] {
        assert!(
            acc > mean_attacked + 10.0,
            "{name} should beat the attacked mean: {acc:.1}% vs {mean_attacked:.1}%"
        );
        assert!(
            acc > honest - 8.0,
            "{name} should stay near the honest baseline: {acc:.1}% vs {honest:.1}%"
        );
    }
}

// ---- satellite: value-finiteness screen on hostile frames --------------

fn screen_model() -> (MlpModel, ParamSet) {
    let model = MlpModel::new(9, 7, 4);
    let params = model.init_params(&mut stream(5, StreamTag::Init, 0, 0));
    (model, params)
}

fn perturbed(global: &ParamSet, seed: u64) -> ParamSet {
    let mut rng = stream(seed, StreamTag::Init, 1, seed);
    let mut flat = global.flatten();
    for v in &mut flat {
        *v += rng.gen_range(-0.5f32..0.5);
    }
    let mut p = global.zeros_like();
    p.unflatten_from(&flat);
    p
}

/// A structurally-valid wire frame whose value stream carries `poison` at
/// one position — exactly what a byzantine client that respects the codec
/// but not the mathematics would send.
fn hostile_wire_upload(global: &ParamSet, poison: f32) -> Upload {
    let mut flat = perturbed(global, 77).flatten();
    let mid = flat.len() / 2;
    flat[mid] = poison;
    let mut params = global.zeros_like();
    params.unflatten_from(&flat);
    let mask = ModelMask::full(&params);
    let msg = codec::encode_weights(&params, &mask);
    let bytes = msg.body_bytes();
    Upload::wire(UploadKind::Weights, msg, mask, bytes)
}

#[test]
fn hostile_non_finite_frame_is_rejected_with_a_structured_error() {
    let (_, global) = screen_model();
    let honest = Upload::full_weights(perturbed(&global, 1));
    for poison in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
        let hostile = hostile_wire_upload(&global, poison);
        // The screen decodes the wire frame and names the upload.
        let err = screen_upload_values(&global, &[(1.0, &honest), (2.0, &hostile)])
            .expect_err("hostile frame must be screened");
        assert_eq!(err, AggError::NonFiniteValue { index: 1 });
        assert!(
            err.to_string().contains("upload 1"),
            "error must name the upload: {err}"
        );
        // Per-upload predicate agrees, and the dense decoded twin too.
        assert!(upload_has_non_finite(&global, &hostile).unwrap());
        let dense = fedbiad::fl::aggregate::decode_dense(&global, &hostile).unwrap();
        assert!(upload_has_non_finite(&global, &Upload::full_weights(dense)).unwrap());
        // Honest uploads pass.
        assert!(!upload_has_non_finite(&global, &honest).unwrap());
    }
    // After dropping the hostile upload the round proceeds normally.
    let mut g = global.clone();
    aggregate_weights(
        &mut g,
        &[(1.0, &honest)],
        ZeroMode::StaleFill,
        AggSettings::default(),
    )
    .unwrap();
    assert!(g.flatten().iter().all(|v| v.is_finite()));
}

#[test]
fn garbage_attack_is_screened_out_of_the_round() {
    // End to end: 30% of clients upload NaN garbage. The screen drops
    // them (contributors < cohort) and the surviving rounds stay finite —
    // the attack costs participation, not the model.
    let bundle = build(Workload::MnistLike, Scale::Smoke, 41);
    let mut cfg = base_cfg(&bundle, 41);
    cfg.rounds = 4;
    cfg.adversary = Some(AdversarySpec {
        fraction: 0.3,
        mode: AttackMode::Garbage {
            kind: GarbageKind::Nan,
        },
    });
    let log = Experiment::new(bundle.model.as_ref(), &bundle.data, FedAvg::new(), cfg).run();
    assert_eq!(log.records.len(), 4);
    let cohort = fedbiad::fl::round::cohort_size(bundle.data.num_clients(), cfg.client_fraction);
    let mut saw_screening = false;
    for r in &log.records {
        assert!(r.contributors > 0, "round {} lost everyone", r.round);
        assert!(r.contributors <= cohort);
        saw_screening |= r.contributors < cohort;
        assert!(r.test_loss.is_finite(), "round {} poisoned", r.round);
        assert!(r.test_acc.is_finite());
    }
    assert!(saw_screening, "a 30% NaN attack must hit some round");
}

// ---- satellite: churn-emptied rounds are defined no-ops ----------------

#[test]
fn all_dropped_round_is_a_noop_in_the_runner() {
    let bundle = build(Workload::MnistLike, Scale::Smoke, 51);
    for cohort in [1usize, 2] {
        for churn in [
            // Every upload lost on the wire…
            ChurnSpec {
                offline: 0.0,
                dropout: 1.0,
            },
            // …or nobody even starts the round.
            ChurnSpec {
                offline: 1.0,
                dropout: 0.0,
            },
        ] {
            let mut cfg = base_cfg(&bundle, 51);
            cfg.rounds = 3;
            cfg.cohort = Some(cohort);
            cfg.churn = Some(churn);
            let log =
                Experiment::new(bundle.model.as_ref(), &bundle.data, FedAvg::new(), cfg).run();
            assert_eq!(log.records.len(), 3, "cohort {cohort}: log must complete");
            let acc0 = log.records[0].test_acc;
            for r in &log.records {
                assert_eq!(r.contributors, 0, "cohort {cohort} round {}", r.round);
                // The global never moves, so evaluation is constant.
                assert_eq!(r.test_acc.to_bits(), acc0.to_bits());
                assert_eq!(r.agg_seconds, 0.0);
            }
        }
    }
}

#[test]
fn all_dropped_round_is_a_noop_in_the_simulator() {
    let bundle = build(Workload::MnistLike, Scale::Smoke, 52);
    for cohort in [1usize, 2] {
        let mut cfg = base_cfg(&bundle, 52);
        cfg.rounds = 3;
        cfg.cohort = Some(cohort);
        cfg.churn = Some(ChurnSpec {
            offline: 0.0,
            dropout: 1.0,
        });
        let report = Simulator::new(
            bundle.model.as_ref(),
            &bundle.data,
            FedAvg::new(),
            SyncBarrier,
            SimConfig::new(cfg, HeterogeneityProfile::homogeneous_5g()),
        )
        .run();
        assert_eq!(
            report.log.records.len(),
            3,
            "cohort {cohort}: sim log must complete"
        );
        let acc0 = report.log.records[0].test_acc;
        for r in &report.log.records {
            assert_eq!(r.contributors, 0, "cohort {cohort} round {}", r.round);
            assert_eq!(r.test_acc.to_bits(), acc0.to_bits());
        }
        // The lost uploads are visible in the trace, not silently absent.
        let lost = report
            .trace
            .iter()
            .filter(|t| t.kind == TraceKind::ChurnLost)
            .count();
        assert_eq!(
            lost,
            3 * cohort,
            "every dispatched upload must trace as churn-lost"
        );
    }
}

// ---- sync equivalence of the two drivers under attack + churn ----------

#[test]
fn sync_sim_matches_runner_under_attack_and_churn() {
    // The adversary membership and churn fate draws are keyed on
    // (seed, round, client), never on driver internals, so the simulator
    // under a sync barrier must reproduce the lock-step runner bit for
    // bit even with both models active.
    let bundle = build(Workload::MnistLike, Scale::Smoke, 61);
    let mut cfg = base_cfg(&bundle, 61);
    cfg.rounds = 5;
    cfg.agg = AggSettings::default().with_robust(RobustKind::TrimmedMean { trim_frac: 0.2 });
    cfg.adversary = Some(AdversarySpec {
        fraction: 0.25,
        mode: AttackMode::Scale { factor: 10.0 },
    });
    cfg.churn = Some(ChurnSpec {
        offline: 0.15,
        dropout: 0.15,
    });

    let legacy = Experiment::new(bundle.model.as_ref(), &bundle.data, FedAvg::new(), cfg).run();
    let report = Simulator::new(
        bundle.model.as_ref(),
        &bundle.data,
        FedAvg::new(),
        SyncBarrier,
        SimConfig::new(cfg, HeterogeneityProfile::homogeneous_5g()),
    )
    .run();

    assert_eq!(legacy.records.len(), report.log.records.len());
    for (ra, rb) in legacy.records.iter().zip(&report.log.records) {
        assert_eq!(ra.contributors, rb.contributors, "round {}", ra.round);
        assert_eq!(
            ra.train_loss.to_bits(),
            rb.train_loss.to_bits(),
            "train loss round {}",
            ra.round
        );
        assert_eq!(
            ra.test_acc.to_bits(),
            rb.test_acc.to_bits(),
            "test acc round {}",
            ra.round
        );
        assert_eq!(
            ra.upload_bytes_mean, rb.upload_bytes_mean,
            "upload bytes round {}",
            ra.round
        );
    }
}
