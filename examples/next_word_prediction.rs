//! Domain scenario 2 (paper §V-A, next-word prediction): an LSTM language
//! model on a Reddit-like non-IID federation. Shows the paper's headline
//! structural claim: FedBIAD can drop *recurrent* rows, so its save ratio
//! on RNN models (2×) beats FedDrop's (≈1.25×), while top-3 accuracy holds.
//!
//! ```text
//! cargo run --release --example next_word_prediction
//! ```

use fedbiad::prelude::*;

fn main() {
    let seed = 13;
    let bundle = build(Workload::RedditLike, Scale::Smoke, seed);
    println!(
        "workload: {} — {} clients with unequal data: sizes {:?}…",
        bundle.data.name,
        bundle.data.num_clients(),
        bundle
            .data
            .clients
            .iter()
            .take(4)
            .map(ClientData::num_samples)
            .collect::<Vec<_>>()
    );

    let rounds = 20;
    let cfg = ExperimentConfig {
        rounds,
        client_fraction: 0.3,
        seed,
        train: bundle.train,
        eval_topk: 3, // mobile keyboards show three candidates (paper §V-B)
        eval_every: 1,
        eval_max_samples: 0,
        agg: Default::default(),
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    };

    let p = bundle.dropout_rate;
    let logs = vec![
        Experiment::new(bundle.model.as_ref(), &bundle.data, FedAvg::new(), cfg).run(),
        Experiment::new(bundle.model.as_ref(), &bundle.data, FedDrop::new(p), cfg).run(),
        Experiment::new(bundle.model.as_ref(), &bundle.data, Fjord::new(p), cfg).run(),
        Experiment::new(
            bundle.model.as_ref(),
            &bundle.data,
            FedBiad::new(FedBiadConfig::paper(p, rounds - 5)),
            cfg,
        )
        .run(),
    ];

    let full = logs[0].mean_upload_bytes();
    println!(
        "\n{:<10} {:>10} {:>12} {:>8}",
        "method", "top3-acc%", "upload/rnd", "save"
    );
    for log in &logs {
        println!(
            "{:<10} {:>10.2} {:>12} {:>7.2}x",
            log.method,
            log.final_accuracy_pct(),
            fedbiad::fl::metrics::fmt_bytes(log.mean_upload_bytes()),
            full as f64 / log.mean_upload_bytes() as f64,
        );
    }
    println!(
        "\nnote: FedDrop may only compress the embedding dimension of an RNN \
         model (no recurrent rows), FedBIAD drops rows of every matrix — that \
         is the paper's structural 2x-vs-1.25x story."
    );
}
