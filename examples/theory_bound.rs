//! Theorem 1 in action: evaluate the generalization-error bound (eqs. (13),
//! (14), (15)) for the paper's MNIST-scale model across rounds, and show
//! the minimax-rate envelope (eqs. (17)/(18)).
//!
//! ```text
//! cargo run --release --example theory_bound
//! ```

use fedbiad::core::spike_slab::posterior_variance;
use fedbiad::core::theory::{
    epsilon_bound, generalization_bound, holder_upper_bound, m_r, minimax_rate, TheoryParams,
};
use fedbiad::nn::mlp::MlpModel;
use fedbiad::nn::Model;

fn main() {
    let model = MlpModel::new(784, 128, 10);
    let arch = model.arch();
    let p = TheoryParams::from_arch(&arch, 0.2);
    println!(
        "model: MLP 784-128-10, N = {} weights, S = {:.0} (p = 0.2), L = {}, D = {}",
        arch.total_weights, p.s, p.l, p.d_width
    );

    // The paper's setting: V local iterations, min |D_k| = 60 samples.
    let (v, min_dk) = (24, 60);
    println!("\nround     m_r      s̃² (eq.13)     ε (eq.15)   bound (eq.14)");
    for r in [1usize, 2, 5, 10, 20, 40, 60] {
        let m = m_r(r, v, min_dk);
        let s2 = posterior_variance(p.s, m, &arch, p.b);
        let eps = epsilon_bound(&p, m);
        let bound = generalization_bound(&p, m, 0.0);
        println!("{r:>5} {m:>8.0}  {s2:>12.3e}  {eps:>12.4}  {bound:>12.4}");
    }

    println!("\nminimax envelope (γ-Hölder targets, γ = 1.5, d = 784):");
    println!("  m_r        lower C₂·rate    upper C₁·rate·log²m    ratio(=log²m)");
    for m in [1e3, 1e4, 1e5, 1e6] {
        let lo = minimax_rate(m, 1.5, 784.0);
        let hi = holder_upper_bound(m, 1.5, 784.0, 1.0);
        println!(
            "{m:>8.0e}   {lo:>12.4e}     {hi:>14.4e}      {:>10.1}",
            hi / lo
        );
    }
    println!(
        "\nThe bound decreases monotonically in the round count and the \
         upper/lower envelopes differ by exactly log²(m_r): the convergence \
         rate is minimax optimal up to a squared logarithmic factor (Thm. 1)."
    );
}
