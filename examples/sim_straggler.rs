//! Straggler showdown: synchronous barrier vs. buffered-async (FedBuff)
//! on a heterogeneous cohort, measured on the simulator's virtual clock.
//!
//! 40 % of the clients are 20× slower than the rest. The sync barrier
//! pays the slowest selected client every round; FedBuff keeps the fast
//! clients cycling and down-weights stale uploads — watch the
//! Time-To-Accuracy gap.
//!
//! ```text
//! cargo run --release --example sim_straggler
//! ```

use fedbiad::fl::round::cohort_size;
use fedbiad::prelude::*;

fn main() {
    let seed = 42;
    let bundle = build(Workload::MnistLike, Scale::Smoke, seed);
    let cfg = ExperimentConfig {
        rounds: 12,
        client_fraction: 0.5,
        seed,
        train: bundle.train,
        eval_topk: bundle.eval_topk,
        eval_every: 1,
        eval_max_samples: 0,
        agg: Default::default(),
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    };
    let stragglers = HeterogeneityProfile::Stragglers {
        fraction: 0.4,
        slowdown: 20.0,
        jitter: 0.05,
    };
    let cohort = cohort_size(bundle.data.num_clients(), cfg.client_fraction);

    println!(
        "cohort: {} of {} clients per round, 40% of devices 20x slower\n",
        cohort,
        bundle.data.num_clients()
    );

    let sync = Simulator::new(
        bundle.model.as_ref(),
        &bundle.data,
        FedAvg::new(),
        SyncBarrier,
        SimConfig::new(cfg, stragglers),
    )
    .run();
    let buffered = Simulator::new(
        bundle.model.as_ref(),
        &bundle.data,
        FedAvg::new(),
        FedBuff::new((cohort / 2).max(1), cohort),
        SimConfig::new(cfg, stragglers),
    )
    .run();

    println!("policy      round  virt-seconds  test-acc");
    println!("-------------------------------------------");
    for report in [&sync, &buffered] {
        for (r, t) in report.log.records.iter().zip(&report.round_end_seconds) {
            println!(
                "{:<10}  {:>5}  {:>12.3}  {:>8.3}",
                report.policy, r.round, t, r.test_acc
            );
        }
    }

    let final_sync = sync.log.records.last().unwrap().test_acc;
    let final_buf = buffered.log.records.last().unwrap().test_acc;
    let target = 0.9 * final_sync.min(final_buf);
    let tta_sync = sync.time_to_accuracy(target);
    let tta_buf = buffered.time_to_accuracy(target);
    println!("\ntarget accuracy: {:.1} %", target * 100.0);
    println!(
        "  sync barrier   TTA: {}",
        tta_sync
            .map(|t| format!("{t:.3} virtual s"))
            .unwrap_or_else(|| "not reached".into())
    );
    println!(
        "  buffered-async TTA: {}",
        tta_buf
            .map(|t| format!("{t:.3} virtual s"))
            .unwrap_or_else(|| "not reached".into())
    );
    if let (Some(s), Some(b)) = (tta_sync, tta_buf) {
        println!("  speedup: {:.1}x", s / b);
    }
}
