//! Quickstart: run FedBIAD against FedAvg on a small MNIST-like federated
//! workload and print the per-round table.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fedbiad::prelude::*;

fn main() {
    let seed = 42;
    let bundle = build(Workload::MnistLike, Scale::Smoke, seed);
    println!(
        "workload: {} — {} clients, dropout rate p = {}",
        bundle.data.name,
        bundle.data.num_clients(),
        bundle.dropout_rate
    );

    let rounds = 20;
    let cfg = ExperimentConfig {
        rounds,
        client_fraction: 0.3,
        seed,
        train: bundle.train,
        eval_topk: bundle.eval_topk,
        eval_every: 1,
        eval_max_samples: 0,
        agg: Default::default(),
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    };

    let fedavg = Experiment::new(bundle.model.as_ref(), &bundle.data, FedAvg::new(), cfg).run();
    let fedbiad = Experiment::new(
        bundle.model.as_ref(),
        &bundle.data,
        FedBiad::new(FedBiadConfig::paper(bundle.dropout_rate, rounds - 5)),
        cfg,
    )
    .run();

    println!("\nround  fedavg-acc%  fedbiad-acc%  fedavg-upload  fedbiad-upload");
    for (a, b) in fedavg.records.iter().zip(&fedbiad.records) {
        println!(
            "{:>5}  {:>10.1}  {:>11.1}  {:>13}  {:>14}",
            a.round,
            a.test_acc * 100.0,
            b.test_acc * 100.0,
            fedbiad::fl::metrics::fmt_bytes(a.upload_bytes_mean),
            fedbiad::fl::metrics::fmt_bytes(b.upload_bytes_mean),
        );
    }
    let save = fedavg.mean_upload_bytes() as f64 / fedbiad.mean_upload_bytes() as f64;
    println!(
        "\nFedBIAD uplink save ratio vs FedAvg: {save:.2}x  \
         (final acc {:.1}% vs {:.1}%)",
        fedbiad.final_accuracy_pct(),
        fedavg.final_accuracy_pct()
    );
}
