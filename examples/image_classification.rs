//! Domain scenario 1 (paper §V-A, image classification): non-IID
//! MNIST-like and FMNIST-like workloads, comparing FedBIAD with FedAvg and
//! FedDrop at the paper's dropout rates, including the simulated wireless
//! time-to-accuracy.
//!
//! ```text
//! cargo run --release --example image_classification
//! ```

use fedbiad::fl::timing;
use fedbiad::prelude::*;

fn run(
    bundle: &fedbiad::fl::workload::WorkloadBundle,
    rounds: usize,
    seed: u64,
) -> Vec<ExperimentLog> {
    let cfg = ExperimentConfig {
        rounds,
        client_fraction: 0.2,
        seed,
        train: bundle.train,
        eval_topk: bundle.eval_topk,
        eval_every: 1,
        eval_max_samples: 0,
        agg: Default::default(),
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    };
    vec![
        Experiment::new(bundle.model.as_ref(), &bundle.data, FedAvg::new(), cfg).run(),
        Experiment::new(
            bundle.model.as_ref(),
            &bundle.data,
            FedDrop::new(bundle.dropout_rate),
            cfg,
        )
        .run(),
        Experiment::new(
            bundle.model.as_ref(),
            &bundle.data,
            FedBiad::new(FedBiadConfig::paper(
                bundle.dropout_rate,
                rounds.saturating_sub(5),
            )),
            cfg,
        )
        .run(),
    ]
}

fn main() {
    let seed = 7;
    let rounds = 25;
    let net = NetworkModel::t_mobile_5g();
    for w in [Workload::MnistLike, Workload::FmnistLike] {
        let bundle = build(w, Scale::Smoke, seed);
        println!("\n== {} (p = {}) ==", bundle.data.name, bundle.dropout_rate);
        println!(
            "{:<10} {:>7} {:>12} {:>10} {:>12}",
            "method", "acc%", "upload/rnd", "save", "TTA(s)"
        );
        let logs = run(&bundle, rounds, seed);
        let full = logs[0].mean_upload_bytes();
        for log in &logs {
            let tta = timing::time_to_accuracy(&log.records, bundle.target_acc, &net)
                .map(|t| format!("{t:.1}"))
                .unwrap_or_else(|| "—".into());
            println!(
                "{:<10} {:>7.2} {:>12} {:>9.2}x {:>12}",
                log.method,
                log.final_accuracy_pct(),
                fedbiad::fl::metrics::fmt_bytes(log.mean_upload_bytes()),
                full as f64 / log.mean_upload_bytes() as f64,
                tta,
            );
        }
    }
}
