//! Domain scenario 3 (paper Fig. 5 / Table II): FedBIAD composed with a
//! sketched compressor (DGC). The client first drops rows, then compresses
//! the kept-row delta; the server decompresses, reconstructs β∘U and
//! aggregates. Compares naive DGC vs FedBIAD+DGC.
//!
//! ```text
//! cargo run --release --example combine_with_dgc
//! ```

use fedbiad::compress::dgc::Dgc;
use fedbiad::prelude::*;
use std::sync::Arc;

fn main() {
    let seed = 21;
    let bundle = build(Workload::MnistLike, Scale::Smoke, seed);
    let rounds = 20;
    let cfg = ExperimentConfig {
        rounds,
        client_fraction: 0.3,
        seed,
        train: bundle.train,
        eval_topk: bundle.eval_topk,
        eval_every: 1,
        eval_max_samples: 0,
        agg: Default::default(),
        cohort: None,
        sampler: Default::default(),
        adversary: None,
        churn: None,
    };
    let p = bundle.dropout_rate;
    let dgc = || Arc::new(Dgc::paper());

    let logs = vec![
        Experiment::new(bundle.model.as_ref(), &bundle.data, FedAvg::new(), cfg).run(),
        Experiment::new(
            bundle.model.as_ref(),
            &bundle.data,
            FedAvg::with_sketch(dgc()),
            cfg,
        )
        .run(),
        Experiment::new(
            bundle.model.as_ref(),
            &bundle.data,
            FedBiad::with_sketch(FedBiadConfig::paper(p, rounds - 5), dgc()),
            cfg,
        )
        .run(),
    ];

    let full = logs[0].mean_upload_bytes();
    println!(
        "{:<14} {:>7} {:>12} {:>9}",
        "method", "acc%", "upload/rnd", "save"
    );
    for log in &logs {
        println!(
            "{:<14} {:>7.2} {:>12} {:>8.0}x",
            log.method,
            log.final_accuracy_pct(),
            fedbiad::fl::metrics::fmt_bytes(log.mean_upload_bytes()),
            full as f64 / log.mean_upload_bytes() as f64,
        );
    }
    println!(
        "\nFedBIAD+DGC compresses the *kept rows'* delta, so its uplink is \
         roughly half of naive DGC's at p = 0.5 (Table II: 575x vs 321x \
         overall save on PTB)."
    );
}
