//! Offline shim for the subset of `proptest` this workspace uses: the
//! `proptest! { #[test] fn name(x in strategy, ...) { body } }` macro with
//! range and `collection::vec` strategies plus `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: failures report the drawn
//! inputs via the panic message of the underlying `assert!`. Generation is
//! deterministic per test (seeded from the test's name), so CI failures
//! reproduce locally. Boundary values get a probability boost — uniform
//! sampling alone would visit `low`/`high-1` too rarely to catch off-by-one
//! bugs in 256 cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of generated cases per property (matches proptest's default).
pub const NUM_CASES: usize = 256;

/// Derive the per-test RNG, seeded from the test name (FNV-1a) so every
/// property is deterministic and independent.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_strategy_impls {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                // 1-in-8 boost for each boundary.
                match rng.gen_range(0u32..16) {
                    0 | 1 => self.start,
                    2 | 3 => self.end - 1,
                    _ => rng.gen_range(self.start..self.end),
                }
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                match rng.gen_range(0u32..16) {
                    0 | 1 => *self.start(),
                    2 | 3 => *self.end(),
                    _ => rng.gen_range(self.clone()),
                }
            }
        }
    )*};
}

int_strategy_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy_impls {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                // Occasionally pin (almost) the boundaries.
                match rng.gen_range(0u32..16) {
                    0 => self.start,
                    1 => {
                        // Largest representable value strictly below `end`.
                        let hi = self.end - (self.end - self.start) * <$t>::EPSILON;
                        hi.max(self.start)
                    }
                    _ => rng.gen_range(self.start..self.end),
                }
            }
        }
    )*};
}

float_strategy_impls!(f32, f64);

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element_strategy, size_range)`.
    pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let len = match rng.gen_range(0u32..16) {
                0 | 1 => self.size.start,
                2 | 3 => self.size.end - 1,
                _ => rng.gen_range(self.size.clone()),
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy drawing uniformly from a fixed list of options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// `proptest::sample::select(options)` — uniform choice from a
    /// non-empty list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "empty select strategy");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Real proptest re-exports the crate root as `prop` from its
    /// prelude, enabling `prop::sample::select(..)` etc.
    pub use crate as prop;
}

/// Property assertion (no shrinking: plain `assert!` under the hood).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` item macro: expands each contained
/// `#[test] fn name(arg in strategy, ...) { body }` into a `#[test]` that
/// draws [`NUM_CASES`](crate::NUM_CASES) inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __pt_rng = $crate::rng_for(stringify!($name));
            for _pt_case in 0..$crate::NUM_CASES {
                $(
                    let $arg = $crate::Strategy::generate(&($strat), &mut __pt_rng);
                )*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, f in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_sizes(v in collection::vec(0i32..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }

    #[test]
    fn boundaries_are_visited() {
        let mut rng = crate::rng_for("boundaries");
        let strat = 0usize..100;
        let mut lo = false;
        let mut hi = false;
        for _ in 0..crate::NUM_CASES {
            let v = crate::Strategy::generate(&strat, &mut rng);
            lo |= v == 0;
            hi |= v == 99;
        }
        assert!(lo && hi, "boundary boost failed");
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::rng_for("same");
        let mut b = crate::rng_for("same");
        let strat = 0u64..1_000_000;
        for _ in 0..32 {
            assert_eq!(
                crate::Strategy::generate(&strat, &mut a),
                crate::Strategy::generate(&strat, &mut b)
            );
        }
    }
}
