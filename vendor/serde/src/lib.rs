//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Real serde is a zero-copy visitor framework; this shim is a simple
//! value-tree model: `Serialize` lowers a type to a [`Value`], `Deserialize`
//! raises it back. `serde_json` (the sibling shim) prints/parses [`Value`]
//! as JSON text. The `#[derive(Serialize, Deserialize)]` macros are
//! re-exported from the `serde_derive` shim and target these traits.
//!
//! Representation choices mirror `serde_json` defaults so logs stay
//! readable and stable:
//! * structs → objects with fields in declaration order;
//! * unit enum variants → `"VariantName"`;
//! * newtype/tuple/struct enum variants → `{"VariantName": payload}`;
//! * non-finite floats → `null` (and `null` parses back as `NaN`).

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order preserved (struct declaration order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object field list, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Borrow as an array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as a string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Construct from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Self { msg: m.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialize error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Look up a struct field in an object (derive-macro helper).
pub fn field<'v>(obj: &'v [(String, Value)], name: &str, ty: &str) -> Result<&'v Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::msg(format!("missing field `{name}` for {ty}")))
}

/// Lower `self` into a [`Value`].
pub trait Serialize {
    /// Produce the value tree.
    fn to_value(&self) -> Value;
}

/// Raise a [`Value`] back into `Self`.
pub trait Deserialize: Sized {
    /// Parse from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ----

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if let Ok(i) = i64::try_from(v) {
                    Value::Int(i)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    _ => return Err(DeError::msg(concat!("expected integer for ", stringify!($t)))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() {
                    Value::Float(f)
                } else {
                    Value::Null // serde_json convention for NaN/±inf
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::msg(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::msg("expected single-char string")),
        }
    }
}

// ---- containers ----

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| DeError::msg(format!("expected array of length {N}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::msg("expected tuple array"))?;
                let expected = [$($n),+].len();
                if arr.len() != expected {
                    return Err(DeError::msg("tuple length mismatch"));
                }
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )+};
}

tuple_impls!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::msg("expected object map"))?
            .iter()
            .map(|(k, x)| Ok((k.clone(), V::from_value(x)?)))
            .collect()
    }
}
