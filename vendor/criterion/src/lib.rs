//! Offline shim for the subset of the `criterion` benchmarking API this
//! workspace uses. No statistics engine, plots or HTML reports — each
//! benchmark runs a short warm-up, then `sample_size` timed samples, and
//! prints mean/min per-iteration wall time (plus throughput when declared).
//!
//! The point is that `cargo bench` produces comparable numbers offline and
//! that the bench targets compile against the real-criterion call sites
//! unchanged (`benchmark_group`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `criterion_group!`, `criterion_main!`).

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Measurement marker types.
pub mod measurement {
    /// Wall-clock time (the only measurement this shim supports).
    pub struct WallTime;
}

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared throughput of one iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark identifier: `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function + parameter id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // CI smoke mode: `CRITERION_SAMPLE_SIZE=3 cargo bench` shrinks
        // every group's default sample count without touching call sites.
        let sample_size = std::env::var("CRITERION_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 2)
            .unwrap_or(10);
        Self { sample_size }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Configure from CLI args (accepted for API compatibility; no-op).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _marker: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a routine with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher, input);
        self.report(&id.label, &bencher.samples);
        self
    }

    /// Benchmark a routine without input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        self.report(&id.into(), &bencher.samples);
        self
    }

    /// Finish the group (prints nothing extra; accepted for compatibility).
    pub fn finish(self) {}

    fn report(&self, label: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{label:<28} (no samples)", self.name);
            return;
        }
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let min = *samples.iter().min().unwrap();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
            }
            None => String::new(),
        };
        println!(
            "{}/{label:<28} mean {mean:>12?}  min {min:>12?}{rate}",
            self.name
        );
    }
}

/// Passed to the measured routine; `iter` runs and times the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, recording `sample_size` samples after warm-up.
    /// Each sample batches enough iterations to exceed ~1 ms so that timer
    /// resolution does not dominate cheap routines.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + batch sizing: run until 1 ms or 3 iterations.
        let mut batch = 1u32;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch = batch.saturating_mul(2);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch);
        }
    }
}

/// Build the group-runner functions, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Build `main()`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_something(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1)));
        group.finish();
    }

    criterion_group!(benches, bench_something);

    #[test]
    fn group_macro_and_bencher_run() {
        benches();
    }
}
