//! Offline shim for the subset of the `rayon` API this workspace uses:
//! `par_iter().map().reduce()`, `par_iter().map().collect()`,
//! `par_iter_mut().map().collect()` and
//! `par_chunks_exact_mut().enumerate().for_each()`.
//!
//! ## Determinism contract (stronger than upstream rayon)
//!
//! Work items are claimed from an atomic counter by a pool of scoped
//! threads, each result is written into its own index slot, and all
//! combining (`collect` order, `reduce` fold order) happens **sequentially
//! in item-index order** after the parallel phase. Consequently the result
//! of every combinator here is a pure function of the inputs — bit-identical
//! across thread counts and scheduling orders. The repo's reproducibility
//! tests (`tests/determinism*.rs`) rely on this.
//!
//! Thread count: `RAYON_NUM_THREADS` (read on every call, so tests can
//! toggle it), else `std::thread::available_parallelism()`.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Import target mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{ParSliceExt, ParSliceMutExt};
}

/// Number of worker threads for the next parallel call.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Slot buffer written concurrently at disjoint indices.
struct Slots<R> {
    cells: Vec<UnsafeCell<MaybeUninit<R>>>,
}

// Safety: each index is written by exactly one thread (unique claims from an
// atomic counter) and only read after all writers have joined.
unsafe impl<R: Send> Sync for Slots<R> {}

impl<R> Slots<R> {
    fn new(len: usize) -> Self {
        let mut cells = Vec::with_capacity(len);
        for _ in 0..len {
            cells.push(UnsafeCell::new(MaybeUninit::uninit()));
        }
        Self { cells }
    }

    /// Write the result for index `i`. Caller guarantees unique claims.
    unsafe fn write(&self, i: usize, value: R) {
        (*self.cells[i].get()).write(value);
    }

    /// Consume into a fully-initialised `Vec`. Caller guarantees every index
    /// was written exactly once.
    unsafe fn into_vec(self) -> Vec<R> {
        self.cells
            .into_iter()
            .map(|c| c.into_inner().assume_init())
            .collect()
    }
}

/// Run `f(i)` for every `i < len` on a pool of scoped threads and return the
/// results in index order. The backbone of every combinator in this crate.
fn par_map_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let slots = Slots::new(len);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                // Safety: `i` is claimed exactly once across all threads.
                unsafe { slots.write(i, f(i)) };
            });
        }
    });
    // Safety: the claim counter ran past `len`, so every index was written.
    unsafe { slots.into_vec() }
}

/// Raw-pointer wrapper so scoped threads can address disjoint elements of a
/// mutable slice.
struct SendPtr<T>(*mut T);

unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Raw pointer to element `i`. Callers must only materialise `&mut`
    /// references for disjoint indices/ranges (see call sites).
    fn at(&self, i: usize) -> *mut T {
        // Safety of the offset itself: `i` is always < the source slice
        // length at every call site.
        unsafe { self.0.add(i) }
    }
}

/// Entry point `slice.par_iter()` (shared access).
pub trait ParSliceExt<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

/// Entry points `slice.par_iter_mut()` / `slice.par_chunks_exact_mut(n)`.
pub trait ParSliceMutExt<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;

    /// Parallel iterator over non-overlapping `&mut [T]` chunks of exactly
    /// `chunk_size` elements (the remainder is not visited, like upstream
    /// `par_chunks_exact_mut`).
    fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> ParChunksExactMut<'_, T>;
}

impl<T: Send> ParSliceMutExt<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }

    fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> ParChunksExactMut<'_, T> {
        assert!(chunk_size > 0, "par_chunks_exact_mut: zero chunk size");
        ParChunksExactMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel shared-reference iterator.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }

    /// Run `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        par_map_indexed(self.slice.len(), |i| f(&self.slice[i]));
    }
}

/// Mapped parallel shared-reference iterator.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Materialise into a collection, preserving input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromParResults<R>,
    {
        let f = &self.f;
        C::from_vec(par_map_indexed(self.slice.len(), |i| f(&self.slice[i])))
    }

    /// Reduce with `identity` + `op`, folding **in index order** (stronger
    /// determinism than upstream, which reduces in an arbitrary tree).
    pub fn reduce<R, ID, OP>(self, identity: ID, op: OP) -> R
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        ID: Fn() -> R,
        OP: Fn(R, R) -> R,
    {
        let f = &self.f;
        let results = par_map_indexed(self.slice.len(), |i| f(&self.slice[i]));
        results.into_iter().fold(identity(), op)
    }
}

/// Parallel mutable-reference iterator.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Map each `&mut` element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMapMut<'a, T, F>
    where
        R: Send,
        F: Fn(&mut T) -> R + Sync,
    {
        ParMapMut {
            slice: self.slice,
            f,
        }
    }

    /// Run `f` on every `&mut` element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let len = self.slice.len();
        let base = SendPtr(self.slice.as_mut_ptr());
        par_map_indexed(len, |i| {
            // Safety: indices are claimed uniquely, so access is disjoint.
            f(unsafe { &mut *base.at(i) })
        });
    }
}

/// Mapped parallel mutable-reference iterator.
pub struct ParMapMut<'a, T, F> {
    slice: &'a mut [T],
    f: F,
}

impl<'a, T: Send, F> ParMapMut<'a, T, F> {
    /// Materialise into a collection, preserving input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&mut T) -> R + Sync,
        C: FromParResults<R>,
    {
        let len = self.slice.len();
        let base = SendPtr(self.slice.as_mut_ptr());
        let f = &self.f;
        C::from_vec(par_map_indexed(len, |i| {
            // Safety: indices are claimed uniquely, so access is disjoint.
            f(unsafe { &mut *base.at(i) })
        }))
    }
}

/// Parallel exact-chunks mutable iterator.
pub struct ParChunksExactMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksExactMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> ParChunksEnumerate<'a, T> {
        ParChunksEnumerate {
            slice: self.slice,
            chunk_size: self.chunk_size,
        }
    }

    /// Run `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated parallel exact-chunks mutable iterator.
pub struct ParChunksEnumerate<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksEnumerate<'a, T> {
    /// Run `f((chunk_index, chunk))` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let size = self.chunk_size;
        let nchunks = self.slice.len() / size;
        let base = SendPtr(self.slice.as_mut_ptr());
        par_map_indexed(nchunks, |c| {
            // Safety: chunk `c` spans [c*size, (c+1)*size), disjoint from
            // every other claimed chunk and in bounds (c < len/size).
            let chunk = unsafe { std::slice::from_raw_parts_mut(base.at(c * size), size) };
            f((c, chunk));
        });
    }
}

/// Collections buildable from ordered parallel results.
pub trait FromParResults<R> {
    /// Build from results already in input order.
    fn from_vec(v: Vec<R>) -> Self;
}

impl<R> FromParResults<R> for Vec<R> {
    fn from_vec(v: Vec<R>) -> Self {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_reduce_folds_in_order() {
        // String concatenation is order-sensitive: proves index-order folding.
        let v: Vec<usize> = (0..50).collect();
        let s: String = v
            .par_iter()
            .map(|x| format!("{x},"))
            .reduce(String::new, |a, b| a + &b);
        let want: String = (0..50).map(|x| format!("{x},")).collect();
        assert_eq!(s, want);
    }

    #[test]
    fn iter_mut_sees_every_element_once() {
        let mut v = vec![1i64; 500];
        let ids: Vec<i64> = v
            .par_iter_mut()
            .map(|x| {
                *x += 1;
                *x
            })
            .collect();
        assert!(v.iter().all(|&x| x == 2));
        assert_eq!(ids, vec![2i64; 500]);
    }

    #[test]
    fn chunks_exact_mut_covers_exact_chunks_only() {
        let mut v: Vec<usize> = vec![0; 10];
        v.par_chunks_exact_mut(3)
            .enumerate()
            .for_each(|(c, chunk)| {
                for x in chunk.iter_mut() {
                    *x = c + 1;
                }
            });
        assert_eq!(v, [1, 1, 1, 2, 2, 2, 3, 3, 3, 0]);
    }

    #[test]
    fn respects_rayon_num_threads_env() {
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let a: Vec<u32> = (0u32..64)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|x| x * x)
            .collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        let b: Vec<u32> = (0u32..64)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|x| x * x)
            .collect();
        assert_eq!(a, b);
    }
}
