//! Offline shim for the subset of the `rayon` API this workspace uses:
//! `par_iter().map().reduce()`, `par_iter().map().collect()`,
//! `par_iter_mut().map().collect()` and
//! `par_chunks_exact_mut().enumerate().for_each()`.
//!
//! ## Determinism contract (stronger than upstream rayon)
//!
//! Work items are claimed from an atomic counter by a pool of worker
//! threads, each result is written into its own index slot, and all
//! combining (`collect` order, `reduce` fold order) happens **sequentially
//! in item-index order** after the parallel phase. Consequently the result
//! of every combinator here is a pure function of the inputs — bit-identical
//! across thread counts and scheduling orders. The repo's reproducibility
//! tests (`tests/determinism*.rs`) rely on this.
//!
//! ## Execution model
//!
//! Workers are **persistent**: they are spawned lazily the first time a
//! call asks for them and then park on a condvar between calls. The
//! previous implementation spawned fresh OS threads inside
//! `std::thread::scope` on every parallel call, which charged each call
//! tens of microseconds of spawn/join cost per requested thread — enough
//! to make `RAYON_NUM_THREADS=8` *slower* than 1 on small workloads (and
//! on single-core machines, where the extra threads can never pay for
//! themselves). With the persistent pool, asking for more threads than the
//! machine can use costs only a condvar broadcast.
//!
//! The calling thread always participates in the claim loop, so every call
//! makes progress even if all workers are busy with another job; this also
//! makes nested parallel calls deadlock-free (each caller drains its own
//! job before waiting). A panic inside a work item is caught on the
//! executing thread, recorded, and re-raised on the calling thread after
//! the job completes, so workers survive and the caller's closure is never
//! used after its stack frame dies.
//!
//! Thread count: `RAYON_NUM_THREADS` (read on every call, so tests can
//! toggle it), else `std::thread::available_parallelism()`. Either way
//! the *executing* thread count is capped at the machine's available
//! parallelism: the work here is CPU-bound and deterministic regardless
//! of thread count (see above), so oversubscribing cores can only add
//! scheduling overhead — `RAYON_NUM_THREADS=8` on a 1-core box must cost
//! the same as 1, not anti-scale. `current_num_threads()` still reports
//! the requested count, matching upstream rayon's env semantics.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Import target mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{ParSliceExt, ParSliceMutExt};
}

/// Number of worker threads for the next parallel call.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Slot buffer written concurrently at disjoint indices.
struct Slots<R> {
    cells: Vec<UnsafeCell<MaybeUninit<R>>>,
}

// Safety: each index is written by exactly one thread (unique claims from an
// atomic counter) and only read after all writers have joined.
unsafe impl<R: Send> Sync for Slots<R> {}

impl<R> Slots<R> {
    fn new(len: usize) -> Self {
        let mut cells = Vec::with_capacity(len);
        for _ in 0..len {
            cells.push(UnsafeCell::new(MaybeUninit::uninit()));
        }
        Self { cells }
    }

    /// Write the result for index `i`. Caller guarantees unique claims.
    unsafe fn write(&self, i: usize, value: R) {
        (*self.cells[i].get()).write(value);
    }

    /// Consume into a fully-initialised `Vec`. Caller guarantees every index
    /// was written exactly once.
    unsafe fn into_vec(self) -> Vec<R> {
        self.cells
            .into_iter()
            .map(|c| c.into_inner().assume_init())
            .collect()
    }
}

/// One parallel call's shared state, handed to the persistent workers.
///
/// `f` is a lifetime-erased pointer to the caller's closure. Safety rests on
/// two invariants: workers dereference `f` only after claiming an index
/// `i < len`, and the caller does not return from [`run_parallel`] until
/// `done == len` — at which point every claimed index has finished and any
/// later `next.fetch_add` yields `i >= len`, so `f` is never touched again
/// even though stale `Arc<Job>` handles may outlive the caller's frame.
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    len: usize,
    /// Claim counter: `fetch_add` hands out each index exactly once.
    next: AtomicUsize,
    /// Completion counter: incremented (`AcqRel`) after each item finishes,
    /// so the thread that observes `done == len` has acquired every item's
    /// writes.
    done: AtomicUsize,
    /// Set when any item panicked; the caller re-raises after the job ends.
    panicked: AtomicBool,
    /// Completion flag + condvar the caller waits on.
    fin: Mutex<bool>,
    fin_cv: Condvar,
}

// Safety: `f` is only dereferenced under the claim/done protocol documented
// on the struct; everything else is already Send + Sync.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claim and execute items until the claim counter runs out. Called by
    /// workers and by the submitting thread alike.
    fn run(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.len {
                return;
            }
            // Safety: `i < len` was claimed exactly once, and the caller
            // keeps the closure alive until `done == len` (see struct doc).
            let f = unsafe { &*self.f };
            if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.len {
                let mut fin = self.fin.lock().unwrap();
                *fin = true;
                self.fin_cv.notify_all();
            }
        }
    }

    /// Whether every index has been handed out already.
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.len
    }
}

/// The global worker pool: a single published-job slot plus the number of
/// workers spawned so far. Workers park on `work_cv` when the slot is empty
/// or exhausted.
struct Pool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

struct PoolState {
    job: Option<Arc<Job>>,
    workers: usize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            job: None,
            workers: 0,
        }),
        work_cv: Condvar::new(),
    })
}

/// Body of each persistent worker: park until a live job is published, help
/// drain it, repeat. Workers never exit; they spend idle time blocked on the
/// condvar, so an oversized pool costs memory, not CPU.
fn worker_loop() {
    let p = pool();
    loop {
        let job = {
            let mut st = p.state.lock().unwrap();
            loop {
                match st.job.as_ref() {
                    Some(j) if !j.exhausted() => break Arc::clone(j),
                    Some(_) => st.job = None, // stale: all indices claimed
                    None => {}
                }
                st = p.work_cv.wait(st).unwrap();
            }
        };
        job.run();
    }
}

/// Publish `f` over `len` indices to `extra` helper workers and run it to
/// completion on the calling thread. Single-job slot: a concurrent call
/// simply replaces the published job, which is safe (each submitter drains
/// its own job) and only costs the first job its helpers.
fn run_parallel(extra: usize, len: usize, f: &(dyn Fn(usize) + Sync)) {
    // Safety of the lifetime erasure: see the invariants on `Job::f` — the
    // pointer is only dereferenced while this frame is alive.
    let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
    let job = Arc::new(Job {
        f: f_static as *const (dyn Fn(usize) + Sync),
        len,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        fin: Mutex::new(false),
        fin_cv: Condvar::new(),
    });
    let p = pool();
    {
        let mut st = p.state.lock().unwrap();
        while st.workers < extra {
            if std::thread::Builder::new()
                .name(format!("fedbiad-par-{}", st.workers))
                .spawn(worker_loop)
                .is_err()
            {
                break; // fewer helpers is still correct: the caller drains
            }
            st.workers += 1;
        }
        st.job = Some(Arc::clone(&job));
    }
    p.work_cv.notify_all();
    job.run();
    let mut fin = job.fin.lock().unwrap();
    while !*fin {
        fin = job.fin_cv.wait(fin).unwrap();
    }
    drop(fin);
    // Unpublish our job if a later call has not already replaced it, so
    // parked workers do not wake for it again.
    let mut st = p.state.lock().unwrap();
    if st.job.as_ref().is_some_and(|j| Arc::ptr_eq(j, &job)) {
        st.job = None;
    }
    drop(st);
    if job.panicked.load(Ordering::Relaxed) {
        panic!("a parallel work item panicked");
    }
}

/// Run `f(i)` for every `i < len` on the persistent worker pool and return
/// the results in index order. The backbone of every combinator here.
fn par_map_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    // Cap at real parallelism: results are thread-count-invariant by
    // construction, so threads beyond the core count are pure overhead.
    let threads = current_num_threads().min(default_threads()).min(len.max(1));
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let slots = Slots::new(len);
    run_parallel(threads - 1, len, &|i| {
        // Safety: `i` is claimed exactly once across all threads.
        unsafe { slots.write(i, f(i)) };
    });
    // Safety: run_parallel returns only after every index was written.
    unsafe { slots.into_vec() }
}

/// Raw-pointer wrapper so scoped threads can address disjoint elements of a
/// mutable slice.
struct SendPtr<T>(*mut T);

unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Raw pointer to element `i`. Callers must only materialise `&mut`
    /// references for disjoint indices/ranges (see call sites).
    fn at(&self, i: usize) -> *mut T {
        // Safety of the offset itself: `i` is always < the source slice
        // length at every call site.
        unsafe { self.0.add(i) }
    }
}

/// Entry point `slice.par_iter()` (shared access).
pub trait ParSliceExt<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

/// Entry points `slice.par_iter_mut()` / `slice.par_chunks_exact_mut(n)`.
pub trait ParSliceMutExt<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;

    /// Parallel iterator over non-overlapping `&mut [T]` chunks of exactly
    /// `chunk_size` elements (the remainder is not visited, like upstream
    /// `par_chunks_exact_mut`).
    fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> ParChunksExactMut<'_, T>;
}

impl<T: Send> ParSliceMutExt<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }

    fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> ParChunksExactMut<'_, T> {
        assert!(chunk_size > 0, "par_chunks_exact_mut: zero chunk size");
        ParChunksExactMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel shared-reference iterator.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }

    /// Run `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        par_map_indexed(self.slice.len(), |i| f(&self.slice[i]));
    }
}

/// Mapped parallel shared-reference iterator.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Materialise into a collection, preserving input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromParResults<R>,
    {
        let f = &self.f;
        C::from_vec(par_map_indexed(self.slice.len(), |i| f(&self.slice[i])))
    }

    /// Reduce with `identity` + `op`, folding **in index order** (stronger
    /// determinism than upstream, which reduces in an arbitrary tree).
    pub fn reduce<R, ID, OP>(self, identity: ID, op: OP) -> R
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        ID: Fn() -> R,
        OP: Fn(R, R) -> R,
    {
        let f = &self.f;
        let results = par_map_indexed(self.slice.len(), |i| f(&self.slice[i]));
        results.into_iter().fold(identity(), op)
    }
}

/// Parallel mutable-reference iterator.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Map each `&mut` element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMapMut<'a, T, F>
    where
        R: Send,
        F: Fn(&mut T) -> R + Sync,
    {
        ParMapMut {
            slice: self.slice,
            f,
        }
    }

    /// Run `f` on every `&mut` element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let len = self.slice.len();
        let base = SendPtr(self.slice.as_mut_ptr());
        par_map_indexed(len, |i| {
            // Safety: indices are claimed uniquely, so access is disjoint.
            f(unsafe { &mut *base.at(i) })
        });
    }
}

/// Mapped parallel mutable-reference iterator.
pub struct ParMapMut<'a, T, F> {
    slice: &'a mut [T],
    f: F,
}

impl<'a, T: Send, F> ParMapMut<'a, T, F> {
    /// Materialise into a collection, preserving input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&mut T) -> R + Sync,
        C: FromParResults<R>,
    {
        let len = self.slice.len();
        let base = SendPtr(self.slice.as_mut_ptr());
        let f = &self.f;
        C::from_vec(par_map_indexed(len, |i| {
            // Safety: indices are claimed uniquely, so access is disjoint.
            f(unsafe { &mut *base.at(i) })
        }))
    }
}

/// Parallel exact-chunks mutable iterator.
pub struct ParChunksExactMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksExactMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> ParChunksEnumerate<'a, T> {
        ParChunksEnumerate {
            slice: self.slice,
            chunk_size: self.chunk_size,
        }
    }

    /// Run `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated parallel exact-chunks mutable iterator.
pub struct ParChunksEnumerate<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksEnumerate<'a, T> {
    /// Run `f((chunk_index, chunk))` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let size = self.chunk_size;
        let nchunks = self.slice.len() / size;
        let base = SendPtr(self.slice.as_mut_ptr());
        par_map_indexed(nchunks, |c| {
            // Safety: chunk `c` spans [c*size, (c+1)*size), disjoint from
            // every other claimed chunk and in bounds (c < len/size).
            let chunk = unsafe { std::slice::from_raw_parts_mut(base.at(c * size), size) };
            f((c, chunk));
        });
    }
}

/// Collections buildable from ordered parallel results.
pub trait FromParResults<R> {
    /// Build from results already in input order.
    fn from_vec(v: Vec<R>) -> Self;
}

impl<R> FromParResults<R> for Vec<R> {
    fn from_vec(v: Vec<R>) -> Self {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_reduce_folds_in_order() {
        // String concatenation is order-sensitive: proves index-order folding.
        let v: Vec<usize> = (0..50).collect();
        let s: String = v
            .par_iter()
            .map(|x| format!("{x},"))
            .reduce(String::new, |a, b| a + &b);
        let want: String = (0..50).map(|x| format!("{x},")).collect();
        assert_eq!(s, want);
    }

    #[test]
    fn iter_mut_sees_every_element_once() {
        let mut v = vec![1i64; 500];
        let ids: Vec<i64> = v
            .par_iter_mut()
            .map(|x| {
                *x += 1;
                *x
            })
            .collect();
        assert!(v.iter().all(|&x| x == 2));
        assert_eq!(ids, vec![2i64; 500]);
    }

    #[test]
    fn chunks_exact_mut_covers_exact_chunks_only() {
        let mut v: Vec<usize> = vec![0; 10];
        v.par_chunks_exact_mut(3)
            .enumerate()
            .for_each(|(c, chunk)| {
                for x in chunk.iter_mut() {
                    *x = c + 1;
                }
            });
        assert_eq!(v, [1, 1, 1, 2, 2, 2, 3, 3, 3, 0]);
    }

    #[test]
    fn nested_parallel_calls_complete() {
        // Each outer item issues its own parallel call; the submitting
        // thread drains its own job, so this must not deadlock even when
        // every worker is busy with outer items.
        let outer: Vec<usize> = (0..8).collect();
        let sums: Vec<usize> = outer
            .par_iter()
            .map(|&o| {
                let inner: Vec<usize> = (0..32).collect();
                inner
                    .par_iter()
                    .map(|&x| x * o)
                    .reduce(|| 0usize, |a, b| a + b)
            })
            .collect();
        let want: Vec<usize> = (0..8).map(|o| (0..32).sum::<usize>() * o).collect();
        assert_eq!(sums, want);
    }

    // The panic tests call `run_parallel` directly so they exercise the
    // worker pool even on single-core machines (where `par_iter` takes the
    // inline fast path and a panic propagates naturally anyway).

    #[test]
    #[should_panic(expected = "a parallel work item panicked")]
    fn item_panic_is_reraised_on_the_caller() {
        crate::run_parallel(3, 64, &|i| {
            if i == 13 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn pool_survives_an_item_panic() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let first = std::panic::catch_unwind(|| {
            crate::run_parallel(3, 64, &|i| {
                if i % 2 == 0 {
                    panic!("boom");
                }
            });
        });
        assert!(first.is_err());
        // Workers caught the panic and parked again: later calls still work.
        let hits = AtomicUsize::new(0);
        crate::run_parallel(3, 64, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn respects_rayon_num_threads_env() {
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let a: Vec<u32> = (0u32..64)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|x| x * x)
            .collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        let b: Vec<u32> = (0u32..64)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|x| x * x)
            .collect();
        assert_eq!(a, b);
    }
}
