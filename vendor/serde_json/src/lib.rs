//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`] and [`from_str`], over the vendored
//! `serde` shim's [`Value`] tree.
//!
//! Printing follows `serde_json` conventions: struct fields in declaration
//! order, non-finite floats as `null`, minimal float formatting via Rust's
//! shortest-round-trip `Display`. The parser is a strict recursive-descent
//! JSON reader (no trailing commas or comments) with `\uXXXX` escape and
//! surrogate-pair support.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Standard result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse JSON text into a [`Value`] (exposed for ad-hoc inspection).
pub fn parse_value_str(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

// ---- writer ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // Keep it a JSON number that reads back as float-ish; a bare
                // integer like "3" is still valid JSON, so nothing more to do.
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items,
            indent,
            depth,
            |o, x, d| write_value(o, x, indent, d),
            "[]",
        ),
        Value::Object(pairs) => write_seq(
            out,
            pairs,
            indent,
            depth,
            |o, (k, x), d| {
                write_escaped(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, d);
            },
            "{}",
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: &[T],
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, &T, usize),
    brackets: &str,
) {
    let (open, close) = (&brackets[..1], &brackets[1..]);
    out.push_str(open);
    if items.is_empty() {
        out.push_str(close);
        return;
    }
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push_str(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<()> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit.as_bytes() {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::new(format!(
            "expected `{lit}` at byte {pos}",
            pos = *pos
        )))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => {
            expect(b, pos, "null")?;
            Ok(Value::Null)
        }
        Some(b't') => {
            expect(b, pos, "true")?;
            Ok(Value::Bool(true))
        }
        Some(b'f') => {
            expect(b, pos, "false")?;
            Ok(Value::Bool(false))
        }
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => {
                        return Err(Error::new(format!(
                            "expected `,` or `]` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => {
                        return Err(Error::new(format!(
                            "expected `,` or `}}` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!(
            "expected string at byte {pos}",
            pos = *pos
        )));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hi = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low surrogate.
                            if b.get(*pos + 1) == Some(&b'\\') && b.get(*pos + 2) == Some(&b'u') {
                                let lo = parse_hex4(b, *pos + 3)?;
                                *pos += 6;
                                0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32
                            } else {
                                return Err(Error::new("lone high surrogate"));
                            }
                        } else {
                            hi as u32
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::new("invalid \\u escape"))?,
                        );
                    }
                    _ => return Err(Error::new("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so it's valid).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).unwrap());
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u16> {
    if b.len() < at + 4 {
        return Err(Error::new("truncated \\u escape"));
    }
    let s = std::str::from_utf8(&b[at..at + 4]).map_err(|_| Error::new("bad \\u escape"))?;
    u16::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).unwrap();
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("expected number at byte {start}")));
    }
    if !is_float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(-3)),
            (
                "b".into(),
                Value::Array(vec![Value::Float(1.5), Value::Null]),
            ),
            ("c".into(), Value::Str("x\"y\n".into())),
            ("d".into(), Value::Bool(true)),
            ("e".into(), Value::UInt(u64::MAX)),
        ]);
        let s = {
            let mut out = String::new();
            super::write_value(&mut out, &v, None, 0);
            out
        };
        let back = parse_value_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_print_is_parseable_and_indented() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::Int(1)]))]);
        let mut out = String::new();
        super::write_value(&mut out, &v, Some(2), 0);
        assert!(out.contains("\n  \"k\""), "{out}");
        assert_eq!(parse_value_str(&out).unwrap(), v);
    }

    #[test]
    fn float_shortest_repr_round_trips() {
        for f in [0.1f64, 1.0 / 3.0, 1e-12, 123456789.123] {
            let s = {
                let mut out = String::new();
                super::write_value(&mut out, &Value::Float(f), None, 0);
                out
            };
            match parse_value_str(&s).unwrap() {
                Value::Float(g) => assert_eq!(f, g, "{s}"),
                Value::Int(i) => assert_eq!(f, i as f64, "{s}"),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn nan_serialises_as_null() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
        let back: f64 = from_str(&s).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = parse_value_str(r#""A😀""#).unwrap();
        assert_eq!(v, Value::Str("A😀".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value_str("{").is_err());
        assert!(parse_value_str("[1,]").is_err());
        assert!(parse_value_str("01x").is_err());
        assert!(parse_value_str("\"abc").is_err());
    }
}
