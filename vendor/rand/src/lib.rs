//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements exactly the surface the FedBIAD reproduction needs:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator (NOT the
//!   upstream ChaCha12; stream values differ from real `rand`, which is fine
//!   because no test pins upstream draw values, only self-consistency);
//! * [`SeedableRng::seed_from_u64`];
//! * the [`Rng`] extension trait with `gen`, `gen_range` and `gen_bool`;
//! * [`seq::SliceRandom::shuffle`] / `choose` (Fisher–Yates, matching the
//!   upstream downward-iteration order contract of determinism, not its
//!   exact output).
//!
//! Everything is `no_std`-free plain Rust with zero dependencies, and every
//! generator is fully determined by its seed — the property the repo's
//! reproducibility contract (`fedbiad_tensor::rng::stream`) relies on.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-width byte array upstream; we keep it simple).
    type Seed;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 exactly like the
    /// upstream default implementation does.
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic standard RNG: xoshiro256** (Blackman & Vigna).
    ///
    /// Small, fast, passes BigCrush, and — the property this repo actually
    /// depends on — a pure function of its seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is the one invalid xoshiro state.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }
}

/// Types producible by [`Rng::gen`] (the upstream `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from the full-range / unit-interval distribution.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Unbiased integer in `[0, span)` via Lemire's multiply-with-rejection.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            if lo < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::draw(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::draw(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw from the standard distribution of `T` (full integer range /
    /// `[0, 1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform draw from a (half-open or inclusive) range.
    #[inline]
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{uniform_below, RngCore};

    /// Slice randomisation, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = r.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(4);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(5);
        let mut counts = [[0u32; 4]; 4];
        for _ in 0..4000 {
            let mut v = [0usize, 1, 2, 3];
            v.shuffle(&mut r);
            let mut sorted = v;
            sorted.sort_unstable();
            assert_eq!(sorted, [0, 1, 2, 3]);
            for (pos, &val) in v.iter().enumerate() {
                counts[pos][val] += 1;
            }
        }
        for row in counts {
            for c in row {
                assert!((700..1300).contains(&c), "position bias: {c}");
            }
        }
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = StdRng::seed_from_u64(6);
        let v = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let c = *v.choose(&mut r).unwrap();
            seen[(c / 10 - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
