//! `#[derive(Serialize, Deserialize)]` for the vendored `serde` shim.
//!
//! No `syn`/`quote` are available offline, so this crate walks the raw
//! `proc_macro::TokenStream` directly. Supported shapes — everything the
//! FedBIAD workspace derives on:
//!
//! * structs with named fields;
//! * tuple structs (newtype → transparent payload, n-ary → array);
//! * enums with unit, tuple and struct variants (externally tagged, the
//!   serde default: `"Variant"` / `{"Variant": payload}`).
//!
//! Generics and `#[serde(...)]` attributes are not supported; deriving on
//! such an item produces a compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Walk past attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(...)`) starting at `i`; returns the new index.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parse the named fields of a brace group: returns field names in
/// declaration order.
fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found `{other}`"
                ))
            }
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle: i32 = 0;
        let mut prev_dash = false;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == '<' {
                        angle += 1;
                    } else if c == '>' && !prev_dash && angle > 0 {
                        angle -= 1;
                    } else if c == ',' && angle == 0 {
                        i += 1;
                        break;
                    }
                    prev_dash = c == '-';
                }
                _ => prev_dash = false,
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Count the fields of a paren (tuple) group by top-level commas.
fn count_tuple_fields(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle: i32 = 0;
    let mut prev_dash = false;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == '<' {
                    angle += 1;
                } else if c == '>' && !prev_dash && angle > 0 {
                    angle -= 1;
                } else if c == ',' && angle == 0 {
                    count += 1;
                    trailing_comma = true;
                    prev_dash = false;
                    continue;
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_enum_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected item name, found `{other}`")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generics (on `{name}`)"
            ));
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                })
            }
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_enum_variants(g.stream())?,
            }),
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---- Serialize ----

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}\n"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|n| format!("::serde::Serialize::to_value(&self.{n})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str(String::from({vn:?})),\n")
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Object(vec![\
                             (String::from({vn:?}), ::serde::Serialize::to_value(x0))]),\n"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![\
                                 (String::from({vn:?}), ::serde::Value::Array(vec![{}]))]),\n",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 (String::from({vn:?}), \
                                 ::serde::Value::Object(vec![{}]))]),\n",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

// ---- Deserialize ----

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::field(obj, {f:?}, {name:?})?)?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let obj = v.as_object().ok_or_else(|| \
                             ::serde::DeError::msg(\
                             concat!(\"expected object for \", {name:?})))?;\n\
                         Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}\n"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|n| format!("::serde::Deserialize::from_value(&arr[{n}])?"))
                    .collect();
                format!(
                    "let arr = v.as_array().ok_or_else(|| \
                         ::serde::DeError::msg(\
                         concat!(\"expected array for \", {name:?})))?;\n\
                     if arr.len() != {arity} {{\n\
                         return Err(::serde::DeError::msg(\
                             concat!(\"tuple arity mismatch for \", {name:?})));\n\
                     }}\n\
                     Ok({name}({}))",
                    items.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),\n", v.name, v.name))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(payload)?)),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&arr[{k}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let arr = payload.as_array().ok_or_else(|| \
                                         ::serde::DeError::msg(\
                                         concat!(\"expected array payload for \", {vn:?})))?;\n\
                                     if arr.len() != {n} {{\n\
                                         return Err(::serde::DeError::msg(\
                                             concat!(\"bad payload arity for \", {vn:?})));\n\
                                     }}\n\
                                     Ok({name}::{vn}({}))\n\
                                 }}\n",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::field(obj, {f:?}, {vn:?})?)?,\n"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let obj = payload.as_object().ok_or_else(|| \
                                         ::serde::DeError::msg(\
                                         concat!(\"expected object payload for \", {vn:?})))?;\n\
                                     Ok({name}::{vn} {{\n{inits}}})\n\
                                 }}\n"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\
                                 other => Err(::serde::DeError::msg(format!(\
                                     \"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                                 let (tag, payload) = &pairs[0];\n\
                                 let _ = payload;\n\
                                 match tag.as_str() {{\n\
                                     {payload_arms}\
                                     other => Err(::serde::DeError::msg(format!(\
                                         \"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::DeError::msg(\
                                 concat!(\"expected variant for \", {name:?}))),\n\
                         }}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

/// Derive `serde::Serialize` (vendored shim).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

/// Derive `serde::Deserialize` (vendored shim).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}
